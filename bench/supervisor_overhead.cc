// Shard supervision overhead: what the ShardSupervisor's non-blocking
// reap/deadline/retry machinery costs over the minimal alternative -- a
// fork-per-child loop with blocking waitpid and no deadlines, which is
// exactly what the orchestrator used before supervision existed.
//
// Both arms run the same workload: one 2-shard pbft campaign (dealt shards
// of a random-strategy stream), children forked without exec, each running
// the full CampaignDriver for its shard. The supervised arm has per-child
// deadlines armed so the watchdog bookkeeping is actually exercised. The
// bench asserts supervision costs < 2% wall-clock when the workload is
// large enough for the comparison to be meaningful (>= 200 ms per rep);
// below that floor the poll-interval quantum dominates and the number is
// reported without gating.
//
// It also runs one chaos schedule (a child crashed at epoch 0 with a retry)
// and verifies the recovered merged journal is byte-identical to the
// unfailed run -- the recovery bar CI's chaos smoke pins, kept here so the
// JSON artifact records it next to the overhead numbers.
//
//   bench_supervisor_overhead [reps] [budget] [--json [path]]
//   (defaults: 5; 24)
//
// Artifacts land in the working directory as BENCH_chaos-*.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "apps/common/shard_supervisor.h"
#include "bench_args.h"
#include "util/string_util.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void RemoveArtifacts(const std::string& base, size_t shards) {
  std::remove(base.c_str());
  std::remove((base + ".tmp").c_str());
  for (size_t epoch = 0; epoch < 32; ++epoch) {
    std::remove((base + lfi::StrFormat(".epoch%zu.frontier", epoch)).c_str());
    std::remove((base + lfi::StrFormat(".epoch%zu.frontier.tmp", epoch)).c_str());
    for (size_t shard = 0; shard < shards; ++shard) {
      std::remove((base + lfi::StrFormat(".epoch%zu.shard%zu", epoch, shard)).c_str());
    }
  }
  for (size_t shard = 0; shard < shards; ++shard) {
    std::remove((base + lfi::StrFormat(".shard%zu", shard)).c_str());
  }
}

// The per-rep workload: the two dealt shards of one random-strategy pbft
// campaign, as child specs ready to run.
std::vector<lfi::CampaignSpec> BuildChildren(size_t budget) {
  std::vector<lfi::CampaignSpec> children;
  for (size_t shard = 0; shard < 2; ++shard) {
    lfi::CampaignSpec child;
    child.system = "pbft";
    child.mode = lfi::CampaignMode::kExplore;
    child.strategy = lfi::ExploreStrategy::kRandom;
    child.budget = budget;
    child.seed = 11;
    child.workers = 1;
    child.shard_index = shard;
    child.shard_count = 2;
    child.journal_path = lfi::StrFormat("BENCH_chaos-work.lfij.shard%zu", shard);
    std::remove(child.journal_path.c_str());
    children.push_back(std::move(child));
  }
  return children;
}

bool RunChild(const lfi::CampaignSpec& child, std::string* error) {
  lfi::CampaignDriver driver(child);
  return driver.Run(error).has_value();
}

// The pre-supervision orchestrator: fork every child, block in waitpid, no
// deadlines, no retries. The floor the supervisor's overhead is measured
// against.
bool BaselineForkAndWait(const std::vector<lfi::CampaignSpec>& children) {
  std::vector<pid_t> pids;
  for (const lfi::CampaignSpec& child : children) {
    pid_t pid = fork();
    if (pid == 0) {
      dup2(STDERR_FILENO, STDOUT_FILENO);
      std::string error;
      std::_Exit(RunChild(child, &error) ? 0 : 1);
    }
    if (pid < 0) {
      return false;
    }
    pids.push_back(pid);
  }
  bool ok = true;
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    ok &= WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  return ok;
}

bool SupervisedRun(const std::vector<lfi::CampaignSpec>& children) {
  lfi::ShardSupervisor::Options options;
  options.child_timeout_ms = 60000;  // deadlines armed: the watchdog is live
  lfi::ShardSupervisor supervisor(options, RunChild);
  std::string error;
  return supervisor.Run(children, &error);
}

}  // namespace

int main(int argc, char** argv) {
  lfi_bench::JsonArgs args = lfi_bench::ParseJsonArgs(argc, argv, "BENCH_chaos.json");
  size_t reps = 5;
  size_t budget = 24;
  if (args.positional.size() > 0 && std::atoll(args.positional[0]) > 0) {
    reps = static_cast<size_t>(std::atoll(args.positional[0]));
  }
  if (args.positional.size() > 1 && std::atoll(args.positional[1]) > 0) {
    budget = static_cast<size_t>(std::atoll(args.positional[1]));
  }

  std::printf("shard supervision overhead: 2-shard pbft random campaign, budget %zu, "
              "%zu rep(s) per arm\n\n",
              budget, reps);

  // Warm the analysis caches (and the page cache) once so neither arm pays
  // first-run costs; then alternate arms and compare best-of-reps -- on a
  // loaded host per-rep child CPU swings by 20%+, and the minimum is the
  // noise-resistant estimate of what each arm actually costs.
  std::string error;
  if (!BaselineForkAndWait(BuildChildren(budget)) || !SupervisedRun(BuildChildren(budget))) {
    std::fprintf(stderr, "warmup failed\n");
    return 1;
  }
  double baseline_ms = 0.0;
  double supervised_ms = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    if (!SupervisedRun(BuildChildren(budget))) {
      std::fprintf(stderr, "supervised rep %zu failed\n", rep);
      return 1;
    }
    double supervised_rep = MsSince(start);
    start = std::chrono::steady_clock::now();
    if (!BaselineForkAndWait(BuildChildren(budget))) {
      std::fprintf(stderr, "baseline rep %zu failed\n", rep);
      return 1;
    }
    double baseline_rep = MsSince(start);
    baseline_ms = rep == 0 ? baseline_rep : std::min(baseline_ms, baseline_rep);
    supervised_ms = rep == 0 ? supervised_rep : std::min(supervised_ms, supervised_rep);
  }
  double overhead_pct = (supervised_ms - baseline_ms) / baseline_ms * 100.0;
  bool gated = baseline_ms >= 200.0;  // below this the poll quantum dominates
  std::printf("%-22s %10.1f ms/rep (best of %zu)\n", "fork + blocking wait", baseline_ms, reps);
  std::printf("%-22s %10.1f ms/rep (best of %zu)\n", "ShardSupervisor", supervised_ms, reps);
  std::printf("%-22s %+10.2f %%%s\n\n", "overhead", overhead_pct,
              gated ? "" : "  (below the 200 ms floor; not gated)");

  // The recovery bar: a child crashed at epoch 0 and retried must converge
  // to the unfailed run's merged bytes.
  std::string clean_path = "BENCH_chaos-clean.lfij";
  std::string chaos_path = "BENCH_chaos-chaos.lfij";
  RemoveArtifacts(clean_path, 2);
  RemoveArtifacts(chaos_path, 2);
  lfi::CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = lfi::CampaignMode::kExplore;
  spec.strategy = lfi::ExploreStrategy::kCoverage;
  spec.budget = 32;
  spec.seed = 7;
  spec.epoch_len = 2;
  spec.shard_count = 2;
  spec.backoff_ms = 10;
  lfi::CampaignSpec clean = spec;
  clean.journal_path = clean_path;
  if (!lfi::CampaignDriver(clean).Run(&error)) {
    std::fprintf(stderr, "clean distributed run failed: %s\n", error.c_str());
    return 1;
  }
  lfi::CampaignSpec chaos = spec;
  chaos.journal_path = chaos_path;
  chaos.failpoints = "epoch0.shard1:child.start=exit:9";
  if (!lfi::CampaignDriver(chaos).Run(&error)) {
    std::fprintf(stderr, "chaos distributed run failed: %s\n", error.c_str());
    return 1;
  }
  bool chaos_identical = ReadFile(clean_path) == ReadFile(chaos_path);
  std::printf("chaos recovery (child crashed at epoch 0, retried): merged journal %s\n",
              chaos_identical ? "byte-identical to the unfailed run"
                              : "DIVERGED from the unfailed run");

  if (args.enabled) {
    std::ofstream out(args.path);
    out << lfi::StrFormat(
        "{\"bench\":\"supervisor_overhead\",\"reps\":%zu,\"budget\":%zu,"
        "\"baseline_ms\":%.1f,\"supervised_ms\":%.1f,\"overhead_pct\":%.2f,"
        "\"gated\":%s,\"chaos_identical\":%s}\n",
        reps, budget, baseline_ms, supervised_ms, overhead_pct, gated ? "true" : "false",
        chaos_identical ? "true" : "false");
    std::printf("wrote %s\n", args.path.c_str());
  }
  if (!chaos_identical) {
    std::fprintf(stderr, "FAIL: chaos recovery diverged\n");
    return 1;
  }
  if (gated && overhead_pct >= 2.0) {
    std::fprintf(stderr, "FAIL: supervision overhead %.2f%% >= 2%%\n", overhead_pct);
    return 1;
  }
  return 0;
}
