// Ablation benchmarks for the two runtime design decisions §4.3 calls out:
//   - short-circuit evaluation of trigger conjunctions (the first false
//     trigger stops the chain), and
//   - O(1) per-call lookup of a function's trigger list, independent of
//     scenario size (vs a linear scan over all associations).

#include <benchmark/benchmark.h>

#include <memory>

#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "util/string_util.h"
#include "vlib/virtual_libc.h"

namespace lfi {
namespace {

// A conjunction of `depth` triggers on close(); the first one always votes
// no, so short-circuiting skips the remaining depth-1 evaluations.
Scenario ConjunctionScenario(int depth) {
  std::string xml = "<scenario>\n";
  xml += R"(<trigger id="gate" class="RandomTrigger">
              <args><probability>0.0</probability></args></trigger>)";
  for (int i = 1; i < depth; ++i) {
    xml += StrFormat("<trigger id=\"t%d\" class=\"RandomTrigger\">"
                     "<args><probability>1.0</probability></args></trigger>\n", i);
  }
  xml += R"(<function name="close" return="-1" errno="EIO"><reftrigger ref="gate"/>)";
  for (int i = 1; i < depth; ++i) {
    xml += StrFormat("<reftrigger ref=\"t%d\"/>", i);
  }
  xml += "</function>\n</scenario>";
  return *Scenario::Parse(xml);
}

// A scenario with `size` associations on distinct functions; the workload
// calls one of them.
Scenario WideScenario(int size) {
  std::string xml = "<scenario>\n";
  xml += R"(<trigger id="t" class="SingletonTrigger"/>)";
  for (int i = 0; i < size; ++i) {
    xml += StrFormat("<function name=\"fn_%d\" return=\"-1\"><reftrigger ref=\"t\"/></function>\n",
                     i);
  }
  xml += R"(<function name="close" return="unused" errno="unused"><reftrigger ref="t"/></function>)";
  xml += "</scenario>";
  return *Scenario::Parse(xml);
}

void RunCloseLoop(benchmark::State& state, const Scenario& scenario, Runtime::Options options) {
  EnsureStockTriggersRegistered();
  VirtualFs fs;
  VirtualNet net;
  VirtualLibc libc(&fs, &net, "bench");
  fs.MkDir("/d");
  fs.WriteFile("/d/f", "x");
  Runtime runtime(scenario, options);
  runtime.set_armed(false);
  libc.set_interposer(&runtime);
  for (auto _ : state) {
    int fd = libc.Open("/d/f", kORdOnly);
    benchmark::DoNotOptimize(libc.Close(fd));
  }
  libc.set_interposer(nullptr);
  state.counters["evals/call"] =
      runtime.interceptions() > 0
          ? static_cast<double>(runtime.trigger_evaluations()) /
                static_cast<double>(runtime.interceptions())
          : 0.0;
}

void BM_ConjunctionShortCircuit(benchmark::State& state) {
  RunCloseLoop(state, ConjunctionScenario(static_cast<int>(state.range(0))), {});
}

void BM_ConjunctionNoShortCircuit(benchmark::State& state) {
  Runtime::Options options;
  options.disable_short_circuit = true;
  RunCloseLoop(state, ConjunctionScenario(static_cast<int>(state.range(0))), options);
}

void BM_LookupHashed(benchmark::State& state) {
  RunCloseLoop(state, WideScenario(static_cast<int>(state.range(0))), {});
}

void BM_LookupLinear(benchmark::State& state) {
  Runtime::Options options;
  options.linear_lookup = true;
  RunCloseLoop(state, WideScenario(static_cast<int>(state.range(0))), options);
}

BENCHMARK(BM_ConjunctionShortCircuit)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_ConjunctionNoShortCircuit)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_LookupHashed)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_LookupLinear)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace lfi

BENCHMARK_MAIN();
