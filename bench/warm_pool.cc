// Warm-instance job execution: what snapshot/reset pools save over cold
// construct-run-destroy bring-up (core/warm_pool.h, docs/architecture.md).
//
// For each system the bench runs the same exhaustive exploration campaign
// twice -- once under the --cold-start ablation (a fresh target per job, the
// paper's fresh-process-per-test model) and once against the default warm
// pools -- takes the best wall clock of `reps` repetitions of each, and
// verifies the two journals are byte-identical (the warm layer's correctness
// bar: amortizing bring-up must not change a single recorded bit). Worker
// count is 1 so the column measures per-instance amortization, not
// parallelism.
//
// The issue's acceptance gate: warm pbft exploration -- where bring-up
// (4-replica cluster construction + socket start) dominates the per-job cost
// -- must clear a 1.5x speedup.
//
//   bench_warm_pool [budget] [seed] [reps] [--json [path]]
//   (defaults: 64; 7; 3)
//
// Artifacts land in the working directory as BENCH_warmpool-*.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "bench_args.h"
#include "util/string_util.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Best-of-reps campaign run; returns the best wall ms and leaves the last
// run's journal at `path`.
struct Timed {
  double best_ms = 0.0;
  size_t scenarios = 0;
  size_t bugs = 0;
};

bool RunTimed(const lfi::CampaignSpec& spec, size_t reps, Timed* out, std::string* error) {
  for (size_t rep = 0; rep < reps; ++rep) {
    std::remove(spec.journal_path.c_str());
    auto start = std::chrono::steady_clock::now();
    auto outcome = lfi::CampaignDriver(spec).Run(error);
    double ms = MsSince(start);
    if (!outcome) {
      return false;
    }
    if (rep == 0 || ms < out->best_ms) {
      out->best_ms = ms;
    }
    out->scenarios = outcome->scenarios_run;
    out->bugs = outcome->bugs.size();
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lfi_bench::JsonArgs args = lfi_bench::ParseJsonArgs(argc, argv, "BENCH_warmpool.json");
  size_t budget = 64;
  uint64_t seed = 7;
  size_t reps = 3;
  for (size_t i = 0; i < args.positional.size(); ++i) {
    long long value = std::atoll(args.positional[i]);
    if (value <= 0) {
      continue;
    }
    if (i == 0) {
      budget = static_cast<size_t>(value);
    } else if (i == 1) {
      seed = static_cast<uint64_t>(value);
    } else if (i == 2) {
      reps = static_cast<size_t>(value);
    }
  }

  std::printf("warm-instance pools vs cold start: exhaustive explore, budget %zu, seed %llu, "
              "best of %zu, 1 worker\n\n",
              budget, (unsigned long long)seed, reps);
  std::printf("%-8s %-11s %-11s %-13s %-13s %-9s %-6s %s\n", "system", "cold ms", "warm ms",
              "cold sc/s", "warm sc/s", "speedup", "bugs", "identical?");

  std::string rows_json;
  bool all_identical = true;
  double pbft_speedup = 0.0;
  for (const char* system : {"git", "mysql", "bind", "pbft"}) {
    lfi::CampaignSpec spec;
    spec.system = system;
    spec.mode = lfi::CampaignMode::kExplore;
    spec.strategy = lfi::ExploreStrategy::kExhaustive;
    spec.budget = budget;
    spec.seed = seed;
    spec.workers = 1;

    std::string error;
    Timed cold;
    spec.journal_path = lfi::StrFormat("BENCH_warmpool-%s-cold.lfij", system);
    spec.cold_start = true;
    if (!RunTimed(spec, reps, &cold, &error)) {
      std::fprintf(stderr, "%s cold run failed: %s\n", system, error.c_str());
      return 1;
    }
    std::string cold_bytes = ReadFile(spec.journal_path);

    Timed warm;
    spec.journal_path = lfi::StrFormat("BENCH_warmpool-%s-warm.lfij", system);
    spec.cold_start = false;
    if (!RunTimed(spec, reps, &warm, &error)) {
      std::fprintf(stderr, "%s warm run failed: %s\n", system, error.c_str());
      return 1;
    }
    bool identical =
        cold.bugs == warm.bugs && !cold_bytes.empty() && ReadFile(spec.journal_path) == cold_bytes;
    all_identical &= identical;

    double cold_rate = cold.scenarios / (cold.best_ms / 1000.0);
    double warm_rate = warm.scenarios / (warm.best_ms / 1000.0);
    double speedup = cold.best_ms / warm.best_ms;
    if (std::string(system) == "pbft") {
      pbft_speedup = speedup;
    }
    std::printf("%-8s %-11.1f %-11.1f %-13.1f %-13.1f %-9.2f %-6zu %s\n", system, cold.best_ms,
                warm.best_ms, cold_rate, warm_rate, speedup, warm.bugs,
                identical ? "yes" : "NO");
    if (!rows_json.empty()) {
      rows_json += ",";
    }
    rows_json += lfi::StrFormat(
        "{\"system\":\"%s\",\"cold_ms\":%.1f,\"warm_ms\":%.1f,"
        "\"cold_scenarios_per_s\":%.1f,\"warm_scenarios_per_s\":%.1f,"
        "\"speedup\":%.3f,\"bugs\":%zu,\"identical\":%s}",
        system, cold.best_ms, warm.best_ms, cold_rate, warm_rate, speedup, warm.bugs,
        identical ? "true" : "false");
  }

  if (args.enabled) {
    std::ofstream out(args.path);
    out << lfi::StrFormat(
        "{\"bench\":\"warm_pool\",\"budget\":%zu,\"seed\":%llu,\"reps\":%zu,\"runs\":[%s]}\n",
        budget, (unsigned long long)seed, reps, rows_json.c_str());
    std::printf("\nwrote %s\n", args.path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a warm campaign's journal diverged from its cold baseline\n");
    return 1;
  }
  if (pbft_speedup < 1.5) {
    std::fprintf(stderr, "FAIL: warm pbft explore speedup %.2fx < 1.5x\n", pbft_speedup);
    return 1;
  }
  return 0;
}
