// Per-intercepted-call interposition overhead (§7.4 methodology).
//
// The paper measured LFI's intrusiveness by running workloads with triggers
// installed but disarmed: "we did not actually inject faults, but allowed
// the triggers to pass the calls through", so the measurement isolates pure
// interposition + trigger-evaluation cost. This bench reproduces that on the
// virtual libc and reports the before/after of the interned fast path:
//
//   mode       lookup                         per-call extras
//   baseline   (no interposer installed)      --
//   interned   dense vector by FunctionId     none (allocation-free)
//   linear     scan of all associations       none (the O(1)-lookup ablation)
//   reference  string-keyed hash maps         std::string copy + heap ArgVec
//                                             (the seed's historical path)
//
// Two workload shapes bound the range: "disarmed" drives functions whose
// associations evaluate (and reject) a trigger on every call, "miss" drives
// functions with no associations at all -- the overwhelmingly common case in
// a real run. Overhead is reported per boundary crossing, baseline-
// subtracted. The acceptance bar for this repository is interned >= 2x
// cheaper than reference in disarmed mode.
//
//   bench_interpose_overhead [iters] [reps] [--json [path]]
//     defaults: 400000 iterations (x2 calls each), 5 reps (best-of),
//     --json writes BENCH_interpose.json

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_args.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "vlib/vfs.h"
#include "vlib/virtual_libc.h"
#include "vlib/vnet.h"

namespace {

using lfi::Runtime;
using lfi::Scenario;

// read+lseek associated with an always-evaluated, never-firing trigger: the
// §7.4 disarmed shape.
constexpr const char* kDisarmedScenario = R"(
<scenario>
  <trigger id="never" class="RandomTrigger"><args><probability>0.0</probability></args></trigger>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="never"/></function>
  <function name="lseek" return="-1" errno="EIO"><reftrigger ref="never"/></function>
</scenario>)";

// Associations exist (so the runtime is comparable), but never for the
// functions the workload calls: every crossing is a lookup miss.
constexpr const char* kMissScenario = R"(
<scenario>
  <trigger id="never" class="RandomTrigger"><args><probability>0.0</probability></args></trigger>
  <function name="unlink" return="-1" errno="EIO"><reftrigger ref="never"/></function>
</scenario>)";

struct Measurement {
  std::string mode;      // baseline | interned | linear | reference
  std::string workload;  // disarmed | miss
  double ns_per_call = 0.0;
  double calls_per_sec = 0.0;
  double overhead_ns = 0.0;  // ns_per_call minus the matching baseline
};

// One timed run: `iters` iterations of read+lseek = 2 boundary crossings
// each. Returns seconds.
double Drive(lfi::VirtualLibc& libc, int fd, size_t iters) {
  char buf[16];
  long sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    sink += libc.Lseek(fd, 0, lfi::kSeekSet);
    sink += libc.Read(fd, buf, sizeof buf);
  }
  auto end = std::chrono::steady_clock::now();
  // Defeat dead-code elimination of the whole loop.
  if (sink == -1) {
    std::fprintf(stderr, "impossible sink\n");
  }
  return std::chrono::duration<double>(end - start).count();
}

double BestOf(int reps, lfi::VirtualLibc& libc, int fd, size_t iters) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    double t = Drive(libc, fd, iters);
    if (r == 0 || t < best) {
      best = t;
    }
  }
  return best;
}

Runtime::Options ModeOptions(const std::string& mode) {
  Runtime::Options options;
  options.linear_lookup = mode == "linear";
  options.string_keyed_reference = mode == "reference";
  return options;
}

std::string JsonEscapeNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  size_t iters = 400000;
  int reps = 5;
  lfi_bench::JsonArgs args = lfi_bench::ParseJsonArgs(argc, argv, "BENCH_interpose.json");
  const bool json = args.enabled;
  const std::string& json_path = args.path;
  const std::vector<char*>& positional = args.positional;
  if (!positional.empty()) {
    iters = static_cast<size_t>(std::strtoull(positional[0], nullptr, 10));
  }
  if (positional.size() > 1) {
    reps = std::atoi(positional[1]);
  }
  if (iters == 0) {
    iters = 400000;
  }
  if (reps < 1) {
    reps = 1;
  }
  lfi::EnsureStockTriggersRegistered();

  const double calls = static_cast<double>(iters) * 2.0;
  std::vector<Measurement> results;
  double baseline_ns[2] = {0.0, 0.0};  // [disarmed, miss]
  const char* workloads[2] = {"disarmed", "miss"};
  const char* scenarios[2] = {kDisarmedScenario, kMissScenario};

  for (int w = 0; w < 2; ++w) {
    for (const char* mode : {"baseline", "interned", "linear", "reference"}) {
      lfi::VirtualFs fs;
      lfi::VirtualNet net;
      lfi::VirtualLibc libc(&fs, &net, "bench");
      fs.MkDir("/d");
      fs.WriteFile("/d/f", std::string(16, 'x'));
      int fd = libc.Open("/d/f", lfi::kORdOnly);
      if (fd < 0) {
        std::fprintf(stderr, "setup failed\n");
        return 1;
      }

      std::optional<Scenario> scenario = Scenario::Parse(scenarios[w]);
      if (!scenario) {
        std::fprintf(stderr, "scenario parse failed\n");
        return 1;
      }
      std::unique_ptr<Runtime> runtime;
      if (std::strcmp(mode, "baseline") != 0) {
        runtime = std::make_unique<Runtime>(*scenario, ModeOptions(mode));
        // §7.4: triggers run, injection never happens.
        runtime->set_armed(false);
        libc.set_interposer(runtime.get());
      }
      Drive(libc, fd, iters / 10 + 1);  // warmup: touch counters, init triggers
      double seconds = BestOf(reps, libc, fd, iters);
      libc.set_interposer(nullptr);

      Measurement m;
      m.mode = mode;
      m.workload = workloads[w];
      m.ns_per_call = seconds * 1e9 / calls;
      m.calls_per_sec = calls / seconds;
      if (std::strcmp(mode, "baseline") == 0) {
        baseline_ns[w] = m.ns_per_call;
      }
      m.overhead_ns = m.ns_per_call - baseline_ns[w];
      results.push_back(m);
    }
  }

  double interned_disarmed = 0.0;
  double reference_disarmed = 0.0;
  std::printf("interposition overhead, %zu iters x 2 calls, best of %d rep(s)\n\n", iters, reps);
  std::printf("%-10s %-10s %12s %16s %14s\n", "workload", "mode", "ns/call", "calls/sec",
              "overhead(ns)");
  for (const Measurement& m : results) {
    std::printf("%-10s %-10s %12.2f %16.0f %14.2f\n", m.workload.c_str(), m.mode.c_str(),
                m.ns_per_call, m.calls_per_sec, m.overhead_ns);
    if (m.workload == "disarmed" && m.mode == "interned") {
      interned_disarmed = m.overhead_ns;
    }
    if (m.workload == "disarmed" && m.mode == "reference") {
      reference_disarmed = m.overhead_ns;
    }
  }
  double speedup = interned_disarmed > 0.0 ? reference_disarmed / interned_disarmed : 0.0;
  std::printf("\ninterned vs string-keyed reference (disarmed): %.2fx lower per-call cost\n",
              speedup);

  if (json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"interpose_overhead\",\n");
    std::fprintf(f, "  \"iterations\": %zu,\n  \"reps\": %d,\n  \"results\": [\n", iters, reps);
    for (size_t i = 0; i < results.size(); ++i) {
      const Measurement& m = results[i];
      std::fprintf(f,
                   "    {\"workload\": \"%s\", \"mode\": \"%s\", \"ns_per_call\": %s, "
                   "\"calls_per_sec\": %s, \"overhead_ns_per_call\": %s}%s\n",
                   m.workload.c_str(), m.mode.c_str(), JsonEscapeNumber(m.ns_per_call).c_str(),
                   JsonEscapeNumber(m.calls_per_sec).c_str(),
                   JsonEscapeNumber(m.overhead_ns).c_str(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"speedup_interned_vs_reference_disarmed\": %s\n}\n",
                 JsonEscapeNumber(speedup).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // The acceptance bar: the interned path must be at least 2x cheaper per
  // intercepted call than the string-keyed reference.
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: expected >= 2x, measured %.2fx\n", speedup);
    return 1;
  }
  return 0;
}
