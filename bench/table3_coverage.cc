// Table 3: automated improvement in recovery-code coverage (§7.1).
//
// For Git and BIND: run the default test suite and measure recovery-code
// coverage; then run the suite once per analyzer-generated injection
// scenario (scoped to the library calls that fail in practice) and measure
// again. Paper: +35% (Git) / +60% (BIND) additional recovery code covered,
// +429/+560 additional LOC, totals 78.7%->79.6% and 61.2%->61.8%.

#include <cstdio>
#include <functional>
#include <set>

#include "analysis/callsite_analyzer.h"
#include "apps/bind/bind.h"
#include "apps/git/git.h"
#include "core/controller.h"
#include "core/scenario_gen.h"
#include "core/stock_triggers.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

// The ~25 library calls "known to fail on occasion" the paper trims to.
const std::set<std::string> kTargetCalls = {
    "open",   "close",   "read",    "write",  "lseek",   "fstat",    "stat",
    "fcntl",  "unlink",  "rename",  "mkdir",  "rmdir",   "fopen",    "fclose",
    "fread",  "fwrite",  "fflush",  "opendir", "readdir", "closedir", "malloc",
    "setenv", "sendto",  "recvfrom", "socket"};

struct CoverageRow {
  CoverageMap::Stats baseline;
  CoverageMap::Stats with_lfi;
  size_t scenarios = 0;
};

// Generates one scenario per analyzable call site (any check class -- the
// goal is coverage, not bug hunting), restricted to kTargetCalls.
std::vector<Scenario> CoverageScenarios(const AppBinary& binary, const FaultProfile& profile) {
  std::vector<Scenario> scenarios;
  CallSiteAnalyzer analyzer;
  for (const auto& [name, fn] : profile.functions()) {
    if (kTargetCalls.count(name) == 0) {
      continue;
    }
    for (const CallSiteReport& report :
         analyzer.Analyze(binary.image(), name, fn.ErrorCodes())) {
      Scenario s = GenerateSiteScenario(report, profile);
      if (!s.functions().empty()) {
        scenarios.push_back(std::move(s));
      }
    }
  }
  return scenarios;
}

template <typename App>
CoverageRow MeasureApp(const AppBinary& binary, const FaultProfile& profile,
                       const std::function<App*(VirtualFs*, VirtualNet*)>& make_app,
                       const std::function<bool(App&)>& suite) {
  CoverageRow row;

  // Master coverage maps (block registration from a fresh instance).
  VirtualFs proto_fs;
  VirtualNet proto_net;
  std::unique_ptr<App> proto(make_app(&proto_fs, &proto_net));
  CoverageMap baseline = proto->coverage();
  CoverageMap with_lfi = proto->coverage();

  // Baseline: the default test suite alone.
  {
    VirtualFs fs;
    VirtualNet net;
    std::unique_ptr<App> app(make_app(&fs, &net));
    suite(*app);
    baseline.AbsorbHits(app->coverage());
    with_lfi.AbsorbHits(app->coverage());
  }
  row.baseline = baseline.ComputeStats();

  // With LFI: re-run the suite once per injection scenario.
  auto scenarios = CoverageScenarios(binary, profile);
  row.scenarios = scenarios.size();
  for (const Scenario& scenario : scenarios) {
    VirtualFs fs;
    VirtualNet net;
    std::unique_ptr<App> app(make_app(&fs, &net));
    TestController controller(scenario);
    controller.RunTest(&app->libc(), [&] { return suite(*app); });
    with_lfi.AbsorbHits(app->coverage());
  }
  row.with_lfi = with_lfi.ComputeStats();
  return row;
}

void PrintRow(const char* name, const CoverageRow& row, const char* paper_extra,
              const char* paper_totals) {
  const auto& b = row.baseline;
  const auto& l = row.with_lfi;
  int extra_recovery_lines = l.covered_recovery_lines - b.covered_recovery_lines;
  double extra_recovery_pct =
      b.recovery_lines == 0 ? 0.0 : 100.0 * extra_recovery_lines / b.recovery_lines;
  std::printf("%s (%zu scenarios)\n", name, row.scenarios);
  std::printf("  recovery blocks covered:    %zu/%zu -> %zu/%zu\n", b.covered_recovery_blocks,
              b.recovery_blocks, l.covered_recovery_blocks, l.recovery_blocks);
  std::printf("  additional recovery code:   +%.0f%% of recovery LOC (paper: %s)\n",
              extra_recovery_pct, paper_extra);
  std::printf("  additional LOC covered:     +%d\n", l.covered_lines - b.covered_lines);
  std::printf("  total line coverage:        %.1f%% -> %.1f%% (paper: %s)\n\n",
              b.line_coverage(), l.line_coverage(), paper_totals);
}

}  // namespace
}  // namespace lfi

int main() {
  lfi::EnsureStockTriggersRegistered();
  std::printf("=== Table 3: automated improvement in code coverage ===\n\n");

  auto git_row = lfi::MeasureApp<lfi::MiniGit>(
      lfi::GitBinary(), lfi::LibcProfile(),
      [](lfi::VirtualFs* fs, lfi::VirtualNet* net) { return new lfi::MiniGit(fs, net, "/repo"); },
      [](lfi::MiniGit& git) { return git.RunDefaultTestSuite(); });
  lfi::PrintRow("Git", git_row, "~35%", "78.7% -> 79.6%");

  auto bind_row = lfi::MeasureApp<lfi::MiniBind>(
      lfi::BindBinary(), lfi::LibcProfile(),
      [](lfi::VirtualFs* fs, lfi::VirtualNet* net) {
        return new lfi::MiniBind(fs, net, "/etc/bind");
      },
      [](lfi::MiniBind& bind) { return bind.RunDefaultTestSuite(); });
  lfi::PrintRow("BIND", bind_row, "~60%", "61.2% -> 61.8%");

  bool improved =
      git_row.with_lfi.covered_recovery_blocks > git_row.baseline.covered_recovery_blocks &&
      bind_row.with_lfi.covered_recovery_blocks > bind_row.baseline.covered_recovery_blocks;
  std::printf("Recovery coverage improved without new tests: %s\n",
              improved ? "reproduced" : "NOT reproduced");
  return improved ? 0 : 1;
}
