// Table 1: the bugs LFI finds entirely on its own (§7.1).
//
// Runs the full automated campaign -- library profiling, call-site analysis,
// scenario generation, fault injection against the default workloads, plus
// the random-injection follow-up -- against all four systems and prints the
// discovered bug list. The paper reports 11 previously unknown bugs.

#include <cstdio>

#include "apps/common/bug_campaign.h"

int main() {
  std::printf("=== Table 1: bugs found automatically by LFI ===\n\n");
  std::printf("%-8s %-22s %-55s %s\n", "System", "Failure", "Where", "Exposing fault");
  std::printf("%.120s\n", "-------------------------------------------------------------------"
                          "-----------------------------------------------------");
  auto bugs = lfi::RunFullCampaign();
  for (const auto& bug : bugs) {
    std::printf("%-8s %-22s %-55s %s\n", bug.system.c_str(), bug.kind.c_str(),
                bug.where.c_str(), bug.injected.c_str());
  }
  std::printf("\nTotal distinct bugs: %zu   (paper: 11)\n", bugs.size());
  return bugs.size() == 11 ? 0 : 1;
}
