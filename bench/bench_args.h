// Shared argv parsing for the JSON-emitting benches.
//
// Splits argv into positionals and an optional `--json [path]` flag. The
// token after --json is taken as the output path only when it cannot be a
// numeric positional (every bench's positionals -- reps, worker counts,
// iteration counts -- are bare integers), so `bench --json 3 4` keeps 3 and
// 4 positional and writes to the default path.

#ifndef LFI_BENCH_BENCH_ARGS_H_
#define LFI_BENCH_BENCH_ARGS_H_

#include <cstring>
#include <string>
#include <vector>

namespace lfi_bench {

struct JsonArgs {
  bool enabled = false;
  std::string path;
  std::vector<char*> positional;
};

inline JsonArgs ParseJsonArgs(int argc, char** argv, const char* default_path) {
  JsonArgs out;
  out.path = default_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      out.enabled = true;
      if (i + 1 < argc && argv[i + 1][0] != '-' &&
          std::strspn(argv[i + 1], "0123456789") != std::strlen(argv[i + 1])) {
        out.path = argv[++i];
      }
    } else {
      out.positional.push_back(argv[i]);
    }
  }
  return out;
}

}  // namespace lfi_bench

#endif  // LFI_BENCH_BENCH_ARGS_H_
