// Serial vs N-worker campaign throughput.
//
// Runs the full §7.1 campaign (all four systems, every generated scenario)
// on the CampaignEngine at increasing worker counts and reports wall time,
// scenarios/second, and the speedup over the 1-worker serial baseline. The
// analysis cache is warmed first so the measurement isolates scenario
// execution -- the part the worker pool actually shards.
//
//   bench_campaign_parallel [reps] [worker counts...] [--json [path]]
//     (defaults: 3; 1 2 4 8; --json writes BENCH_campaign.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "apps/common/bug_campaign.h"
#include "bench_args.h"

namespace {

double RunOnce(int workers, size_t* bugs_out) {
  auto start = std::chrono::steady_clock::now();
  // Exhaustive mode: every worker count executes the identical scenario set
  // (no early exit), so this measures throughput, not luck.
  std::vector<lfi::FoundBug> bugs =
      lfi::RunFullCampaign({.workers = workers, .exhaustive = true});
  auto end = std::chrono::steady_clock::now();
  *bugs_out = bugs.size();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  lfi_bench::JsonArgs args = lfi_bench::ParseJsonArgs(argc, argv, "BENCH_campaign.json");
  const bool json = args.enabled;
  const std::string& json_path = args.path;
  const std::vector<char*>& positional = args.positional;
  int reps = !positional.empty() ? std::atoi(positional[0]) : 3;
  if (reps < 1) {
    reps = 1;
  }
  std::vector<int> worker_counts;
  for (size_t i = 1; i < positional.size(); ++i) {
    // Resolve "0 = one per hardware thread" (and reject garbage) up front so
    // every table row is labeled with the count actually measured.
    int workers = std::atoi(positional[i]);
    if (workers < 0) {
      std::fprintf(stderr, "ignoring invalid worker count '%s'\n", positional[i]);
      continue;
    }
    worker_counts.push_back(workers == 0 ? static_cast<int>(
                                               std::thread::hardware_concurrency())
                                         : workers);
  }
  if (worker_counts.empty()) {
    worker_counts = {1, 2, 4, 8};
  }
  if (worker_counts.front() != 1) {
    // The speedup column is relative to the 1-worker serial baseline, so
    // always measure it.
    worker_counts.insert(worker_counts.begin(), 1);
  }

  // Warm the analysis cache (profiles + call-site reports) once.
  size_t bugs = 0;
  RunOnce(1, &bugs);
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("full campaign (exhaustive): %zu distinct bugs, best of %d rep(s)\n", bugs, reps);
  std::printf("hardware threads: %u (speedup is capped at this; worker counts beyond it\n", hw);
  std::printf("only measure scheduling overhead)\n\n");
  std::printf("%-8s %-10s %-10s %s\n", "workers", "seconds", "speedup", "bugs");

  struct Row {
    int workers;
    double seconds;
    double speedup;
    size_t bugs;
  };
  std::vector<Row> rows;
  double baseline = 0.0;
  bool consistent = true;
  for (int workers : worker_counts) {
    double best = 0.0;
    size_t got = 0;
    for (int r = 0; r < reps; ++r) {
      double t = RunOnce(workers, &got);
      if (r == 0 || t < best) {
        best = t;
      }
    }
    if (baseline == 0.0) {
      baseline = best;  // the leading 1-worker row, measured exactly once
    }
    if (got != bugs) {
      consistent = false;
    }
    rows.push_back({workers, best, baseline / best, got});
    std::printf("%-8d %-10.3f %-10.2f %zu\n", workers, best, baseline / best, got);
  }
  if (json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"campaign_parallel\",\n  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"hardware_threads\": %u,\n  \"results\": [\n", hw);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "    {\"workers\": %d, \"seconds\": %.3f, \"speedup\": %.2f, "
                   "\"bugs\": %zu}%s\n",
                   rows[i].workers, rows[i].seconds, rows[i].speedup, rows[i].bugs,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"bug_counts_consistent\": %s\n}\n",
                 consistent ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!consistent) {
    std::printf("\nERROR: bug counts diverged across worker counts\n");
    return 1;
  }
  return 0;
}
