#include <gtest/gtest.h>

#include <set>

#include "util/errno_codes.h"
#include "util/rng.h"
#include "util/sha1.h"
#include "util/string_util.h"

namespace lfi {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtil, ParseIntDecimal) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt("  13 ").value(), 13);
}

TEST(StringUtil, ParseIntHex) {
  EXPECT_EQ(ParseInt("0x1f").value(), 31);
  EXPECT_EQ(ParseInt("0xABC").value(), 0xabc);
}

TEST(StringUtil, ParseIntRejectsGarbage) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12x").has_value());
  EXPECT_FALSE(ParseInt("abc").has_value());
  EXPECT_FALSE(ParseInt("1 2").has_value());
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "x", 5), "x=5");
  EXPECT_EQ(StrFormat("%06x", 0xa9), "0000a9");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(Rng, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Rng, NextDoubleInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(42);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Chance(0.3)) {
      ++hits;
    }
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

// FIPS 180-1 test vectors.
TEST(Sha1, KnownVectors) {
  EXPECT_EQ(Sha1::HexDigest("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::HexDigest(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::HexDigest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  auto digest = h.Finish();
  static const char kHex[] = "0123456789abcdef";
  std::string hex;
  for (uint8_t b : digest) {
    hex.push_back(kHex[b >> 4]);
    hex.push_back(kHex[b & 0xf]);
  }
  EXPECT_EQ(hex, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog repeatedly";
  Sha1 h;
  for (char c : data) {
    h.Update(&c, 1);
  }
  auto digest = h.Finish();
  Sha1 h2;
  h2.Update(data);
  EXPECT_EQ(digest, h2.Finish());
}

TEST(ErrnoCodes, RoundTripNames) {
  for (int v : {kEINTR, kEIO, kEAGAIN, kENOMEM, kEINVAL, kENOENT, kECONNRESET}) {
    EXPECT_EQ(ErrnoFromName(ErrnoName(v)).value(), v);
  }
}

TEST(ErrnoCodes, NamedValues) {
  EXPECT_EQ(ErrnoName(kEINTR), "EINTR");
  EXPECT_EQ(ErrnoName(kEAGAIN), "EAGAIN");
  EXPECT_EQ(ErrnoFromName("ENOMEM").value(), kENOMEM);
}

TEST(ErrnoCodes, NumericFallback) {
  EXPECT_EQ(ErrnoName(999), "E999");
  EXPECT_EQ(ErrnoFromName("77").value(), 77);
  EXPECT_FALSE(ErrnoFromName("NOTANERRNO").has_value());
}

}  // namespace
}  // namespace lfi
