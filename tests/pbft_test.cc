#include <gtest/gtest.h>

#include "apps/pbft/pbft.h"
#include "core/controller.h"
#include "core/distributed.h"
#include "core/runtime.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/string_util.h"

namespace lfi {
namespace {

class PbftTest : public ::testing::Test {
 protected:
  PbftTest() { EnsureStockTriggersRegistered(); }
  VirtualFs fs_;
};

TEST_F(PbftTest, ServesRequestsWithoutFaults) {
  VirtualNet net(1);
  PbftConfig config;
  PbftCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  int ticks = cluster.RunWorkload(/*requests=*/20, /*max_ticks=*/2000);
  EXPECT_EQ(cluster.client().completed(), 20);
  EXPECT_LT(ticks, 2000);
  EXPECT_FALSE(cluster.crashed());
  // All replicas execute all requests in the same order (state digests agree).
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_GE(cluster.replica(i).executed(), 20);
  }
}

TEST_F(PbftTest, ReplicasAgreeOnExecutionCount) {
  VirtualNet net(2);
  PbftConfig config;
  PbftCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  cluster.RunWorkload(10, 2000);
  int64_t executed = cluster.replica(0).executed();
  for (int i = 1; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica(i).executed(), executed);
  }
}

TEST_F(PbftTest, PeriodicCheckpointsWritten) {
  VirtualNet net(3);
  PbftConfig config;
  config.checkpoint_interval = 8;
  PbftCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  cluster.RunWorkload(10, 3000);
  EXPECT_TRUE(fs_.FileExists("/pbft/replica0.ckpt"));
}

TEST_F(PbftTest, SurvivesModeratePhysicalLoss) {
  VirtualNet net(4);
  net.set_loss_probability(0.2);
  PbftConfig config;
  PbftCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  cluster.RunWorkload(10, 8000);
  EXPECT_EQ(cluster.client().completed(), 10);
  EXPECT_FALSE(cluster.crashed());
}

TEST_F(PbftTest, LossSlowsThroughputMonotonically) {
  auto ticks_for = [&](double loss) {
    VirtualFs fs;
    VirtualNet net(7);
    net.set_loss_probability(loss);
    PbftConfig config;
    PbftCluster cluster(&fs, &net, config);
    EXPECT_TRUE(cluster.Start());
    return cluster.RunWorkload(15, 50000);
  };
  int base = ticks_for(0.0);
  int heavy = ticks_for(0.8);
  EXPECT_GT(heavy, base);
}

TEST_F(PbftTest, ShutdownWritesFinalCheckpoint) {
  VirtualNet net(5);
  PbftConfig config;
  PbftCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  cluster.RunWorkload(5, 2000);
  cluster.replica(1).Shutdown();
  EXPECT_TRUE(fs_.FileExists("/pbft/replica1.final"));
}

TEST_F(PbftTest, ShutdownFopenBugCrashes) {
  VirtualNet net(6);
  PbftConfig config;
  PbftCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  cluster.RunWorkload(5, 2000);

  const AppBinary& binary = PbftBinary();
  Scenario s;
  TriggerDecl decl;
  decl.id = "site";
  decl.class_name = "CallStackTrigger";
  auto args = std::make_unique<XmlNode>("args");
  XmlNode* frame = args->AddChild("frame");
  frame->AddChild("module")->set_text(binary.image().module_name());
  frame->AddChild("offset")->set_text(StrFormat("%x", binary.SiteOffset("pbft.shutdown.fopen")));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = "fopen";
  assoc.retval = 0;
  assoc.errno_value = kEINVAL;
  assoc.triggers.push_back(TriggerRef{"site", false});
  s.AddFunction(std::move(assoc));

  TestController controller(s);
  TestOutcome outcome = controller.RunTest(&cluster.replica(0).libc(), [&] {
    cluster.replica(0).Shutdown();
    return true;
  });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_NE(outcome.crash_where.find("fwrite"), std::string::npos);
}

// The release/debug asymmetry of the view-change bug.
class PbftViewChangeBug : public ::testing::TestWithParam<bool> {};

TEST_P(PbftViewChangeBug, DebugBuildHaltsReleaseBuildCrashes) {
  bool debug_build = GetParam();
  bool saw_release_crash = false;
  bool saw_debug_halt = false;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    VirtualFs fs;
    VirtualNet net(seed);
    PbftConfig config;
    config.debug_build = debug_build;
    PbftCluster cluster(&fs, &net, config);
    ASSERT_TRUE(cluster.Start());

    Scenario dist;
    TriggerDecl decl;
    decl.id = "dist";
    decl.class_name = "DistributedTrigger";
    dist.AddTrigger(decl);
    for (const char* fn : {"sendto", "recvfrom"}) {
      FunctionAssoc assoc;
      assoc.function = fn;
      assoc.retval = -1;
      assoc.errno_value = kEIO;
      assoc.triggers.push_back(TriggerRef{"dist", false});
      dist.AddFunction(assoc);
    }
    RandomLossController controller(0.35, seed);
    std::vector<std::unique_ptr<Runtime>> runtimes;
    for (int i = 0; i < cluster.n(); ++i) {
      cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
      runtimes.push_back(std::make_unique<Runtime>(dist));
      cluster.replica(i).libc().set_interposer(runtimes.back().get());
    }
    cluster.RunWorkload(30, 4000);
    if (cluster.crashed()) {
      EXPECT_FALSE(debug_build) << "debug build must not crash: "
                                << cluster.crash_reason();
      saw_release_crash = true;
      break;
    }
    for (int i = 0; i < cluster.n(); ++i) {
      if (cluster.replica(i).halted()) {
        saw_debug_halt = true;
      }
    }
    if (debug_build && saw_debug_halt) {
      break;
    }
  }
  if (debug_build) {
    EXPECT_TRUE(saw_debug_halt);
  } else {
    EXPECT_TRUE(saw_release_crash);
  }
}

INSTANTIATE_TEST_SUITE_P(Builds, PbftViewChangeBug, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "debug" : "release";
                         });

TEST_F(PbftTest, ViewChangeReplacesPrimary) {
  // Black out the primary's communication entirely: the backups elect a new
  // primary and the system keeps serving requests.
  VirtualNet net(8);
  PbftConfig config;
  PbftCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());

  Scenario dist;
  TriggerDecl decl;
  decl.id = "dist";
  decl.class_name = "DistributedTrigger";
  dist.AddTrigger(decl);
  for (const char* fn : {"sendto", "recvfrom"}) {
    FunctionAssoc assoc;
    assoc.function = fn;
    assoc.retval = -1;
    assoc.errno_value = kEIO;
    assoc.triggers.push_back(TriggerRef{"dist", false});
    dist.AddFunction(assoc);
  }
  BlackoutController controller("replica0");
  std::vector<std::unique_ptr<Runtime>> runtimes;
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
    runtimes.push_back(std::make_unique<Runtime>(dist));
    cluster.replica(i).libc().set_interposer(runtimes.back().get());
  }
  cluster.RunWorkload(10, 8000);
  EXPECT_GE(cluster.client().completed(), 10);
  EXPECT_GT(cluster.replica(1).view(), 0);  // a view change happened
}

}  // namespace
}  // namespace lfi
