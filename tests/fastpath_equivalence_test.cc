// The interned fast path is an optimization, not a behaviour change: this
// suite pins the interned lookup, the linear_lookup ablation, and the
// string-keyed reference path to bit-identical injection logs, bug lists,
// and coverage stats on all four campaigns, and unit-tests the SymbolTable
// the fast path is built on.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/common/bug_campaign.h"
#include "core/controller.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "util/symbol_table.h"
#include "vlib/vfs.h"
#include "vlib/virtual_libc.h"
#include "vlib/vnet.h"

namespace lfi {
namespace {

// --- SymbolTable ------------------------------------------------------------

TEST(SymbolTable, InternIsIdempotentAndDense) {
  SymbolTable table;
  SymbolId read = table.Intern("read");
  SymbolId write = table.Intern("write");
  EXPECT_NE(read, write);
  EXPECT_EQ(table.Intern("read"), read);
  EXPECT_EQ(table.Intern("write"), write);
  EXPECT_EQ(table.size(), 2u);
  // Dense: the two ids are exactly {0, 1}.
  EXPECT_EQ(std::min(read, write), 0u);
  EXPECT_EQ(std::max(read, write), 1u);
}

TEST(SymbolTable, NameReferencesAreStableAcrossGrowth) {
  SymbolTable table;
  SymbolId first = table.Intern("first-symbol");
  const std::string& name = table.Name(first);
  // Grow well past one storage chunk; the reference must not move.
  for (int i = 0; i < 1000; ++i) {
    table.Intern("sym-" + std::to_string(i));
  }
  EXPECT_EQ(&name, &table.Name(first));
  EXPECT_EQ(name, "first-symbol");
  EXPECT_EQ(table.size(), 1001u);
}

TEST(SymbolTable, FindDoesNotIntern) {
  SymbolTable table;
  EXPECT_FALSE(table.Find("never-seen").has_value());
  EXPECT_EQ(table.size(), 0u);
  SymbolId id = table.Intern("seen");
  ASSERT_TRUE(table.Find("seen").has_value());
  EXPECT_EQ(*table.Find("seen"), id);
}

TEST(SymbolTable, ConcurrentInternAgreesOnIds) {
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::vector<std::vector<SymbolId>> ids(kThreads, std::vector<SymbolId>(kNames));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &ids, t] {
      for (int i = 0; i < kNames; ++i) {
        ids[t][i] = table.Intern("name-" + std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kNames));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);
  }
  for (int i = 0; i < kNames; ++i) {
    EXPECT_EQ(table.Name(ids[0][i]), "name-" + std::to_string(i));
  }
}

// --- unknown-function pass-through -----------------------------------------

TEST(FastPath, UnknownFunctionPassesThrough) {
  // A function the scenario does not mention -- even one interned after the
  // runtime was built -- must pass through without counting as interception.
  auto scenario = Scenario::Parse(R"(
<scenario>
  <trigger id="t" class="SingletonTrigger"/>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="t"/></function>
</scenario>)");
  ASSERT_TRUE(scenario.has_value());
  Runtime runtime(*scenario);
  VirtualFs fs;
  VirtualNet net;
  VirtualLibc libc(&fs, &net, "test");
  libc.set_interposer(&runtime);
  fs.MkDir("/d");
  fs.WriteFile("/d/f", "xx");
  int fd = libc.Open("/d/f", kORdOnly);  // "open": not associated, passes
  ASSERT_GE(fd, 0);
  EXPECT_EQ(libc.Lseek(fd, 0, kSeekEnd), 2);  // "lseek": not associated
  char buf[4];
  libc.Lseek(fd, 0, kSeekSet);
  EXPECT_EQ(libc.Read(fd, buf, 2), -1);  // "read": associated, injected
  libc.set_interposer(nullptr);
  // Only the associated function counted as a runtime interception.
  EXPECT_EQ(runtime.interceptions(), 1u);
  EXPECT_EQ(runtime.call_count("read"), 1u);
  EXPECT_EQ(runtime.call_count("open"), 0u);
  EXPECT_EQ(runtime.call_count("no_such_function"), 0u);
  // The boundary still counted everything (call-count trigger semantics).
  EXPECT_EQ(libc.CallCount("open"), 1u);
  EXPECT_EQ(libc.CallCount("lseek"), 2u);
}

// --- per-scenario log equivalence ------------------------------------------

Runtime::Options ModeOptions(int mode) {
  Runtime::Options options;
  options.linear_lookup = mode == 1;
  options.string_keyed_reference = mode == 2;
  return options;
}

const char* ModeName(int mode) {
  switch (mode) {
    case 1:
      return "linear_lookup";
    case 2:
      return "string_keyed_reference";
    default:
      return "interned";
  }
}

TEST(FastPath, InjectionLogsAreBitIdenticalAcrossLookupModes) {
  auto scenario = Scenario::Parse(R"(
<scenario>
  <trigger id="second" class="CallCountTrigger"><args><count>2</count></args></trigger>
  <trigger id="always" class="RandomTrigger"><args><probability>1.0</probability></args></trigger>
  <function name="read" return="-1" errno="EIO">
    <reftrigger ref="second"/>
    <reftrigger ref="always"/>
  </function>
  <function name="pthread_mutex_lock" return="unused" errno="unused"><reftrigger ref="always"/></function>
  <function name="close" return="-1" errno="EBADF"><reftrigger ref="second"/></function>
</scenario>)");
  ASSERT_TRUE(scenario.has_value());

  auto drive = [&](int mode) {
    VirtualFs fs;
    VirtualNet net;
    VirtualLibc libc(&fs, &net, "probe");
    fs.MkDir("/d");
    fs.WriteFile("/d/f", "0123456789");
    TestController controller(*scenario, ModeOptions(mode));
    TestOutcome outcome = controller.RunTest(&libc, [&] {
      char buf[4];
      VMutex m{"m", 0};
      int fd = libc.Open("/d/f", kORdOnly);
      libc.MutexLock(&m);
      libc.Read(fd, buf, 4);
      libc.Read(fd, buf, 4);  // 2nd read: injected
      libc.MutexUnlock(&m);
      libc.Close(fd);
      libc.Close(fd);  // 2nd close: injected (EBADF already, still recorded)
      return true;
    });
    return outcome.log_text;
  };

  std::string interned = drive(0);
  EXPECT_FALSE(interned.empty());
  for (int mode : {1, 2}) {
    EXPECT_EQ(drive(mode), interned) << ModeName(mode);
  }
}

// --- campaign equivalence ---------------------------------------------------

struct LookupModeDefaults {
  explicit LookupModeDefaults(int mode) {
    Runtime::SetLookupModeDefaults(mode == 1, mode == 2);
  }
  ~LookupModeDefaults() { Runtime::SetLookupModeDefaults(false, false); }
};

std::vector<FoundBug> RunCampaignInMode(const std::string& system, int mode) {
  LookupModeDefaults defaults(mode);
  if (system == "git") {
    return RunGitCampaign();
  }
  if (system == "mysql") {
    return RunMysqlCampaign();
  }
  if (system == "bind") {
    return RunBindCampaign();
  }
  return RunPbftCampaign();
}

std::string Render(const std::vector<FoundBug>& bugs) {
  std::string out;
  for (const FoundBug& b : bugs) {
    out += b.system + "|" + b.kind + "|" + b.where + "|" + b.injected + "\n";
  }
  return out;
}

TEST(FastPath, CampaignBugListsAreBitIdenticalAcrossLookupModes) {
  for (const std::string system : {"git", "mysql", "bind", "pbft"}) {
    std::string interned = Render(RunCampaignInMode(system, 0));
    EXPECT_FALSE(interned.empty()) << system;
    for (int mode : {1, 2}) {
      EXPECT_EQ(Render(RunCampaignInMode(system, mode)), interned)
          << system << " diverged under " << ModeName(mode);
    }
  }
}

TEST(FastPath, ExplorationCoverageIsBitIdenticalAcrossLookupModes) {
  auto explore = [](int mode) {
    LookupModeDefaults defaults(mode);
    ExploreConfig config;
    config.strategy = ExploreStrategy::kCoverage;
    config.budget = 24;
    config.seed = 7;
    return ExplorePbftCampaign(config);
  };
  ExplorationResult interned = explore(0);
  auto interned_stats = interned.coverage.ComputeStats();
  EXPECT_GT(interned_stats.covered_blocks, 0u);
  for (int mode : {1, 2}) {
    ExplorationResult other = explore(mode);
    EXPECT_EQ(Render(other.bugs), Render(interned.bugs)) << ModeName(mode);
    EXPECT_EQ(other.scenarios_run, interned.scenarios_run) << ModeName(mode);
    EXPECT_EQ(other.coverage.hits(), interned.coverage.hits()) << ModeName(mode);
    auto stats = other.coverage.ComputeStats();
    EXPECT_EQ(stats.covered_blocks, interned_stats.covered_blocks) << ModeName(mode);
    EXPECT_EQ(stats.covered_recovery_blocks, interned_stats.covered_recovery_blocks)
        << ModeName(mode);
    EXPECT_EQ(stats.covered_lines, interned_stats.covered_lines) << ModeName(mode);
  }
}

TEST(FastPath, InternedCampaignIsBitIdenticalAtOneTwoEightWorkers) {
  CampaignConfig serial;
  serial.workers = 1;
  std::string baseline = Render(RunFullCampaign(serial));
  EXPECT_FALSE(baseline.empty());
  for (int workers : {2, 8}) {
    CampaignConfig config;
    config.workers = workers;
    EXPECT_EQ(Render(RunFullCampaign(config)), baseline) << workers << " workers";
  }
}

}  // namespace
}  // namespace lfi
