#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/custom_triggers.h"
#include "core/distributed.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "vlib/virtual_libc.h"

namespace lfi {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  CoreTest() : libc_(&fs_, &net_, "app") {
    EnsureStockTriggersRegistered();
    EnsureCustomTriggersRegistered();
    fs_.MkDir("/d");
    fs_.WriteFile("/d/f", "0123456789");
  }

  Scenario MustParse(const std::string& xml) {
    std::string error;
    auto s = Scenario::Parse(xml, &error);
    EXPECT_TRUE(s.has_value()) << error;
    return s ? *std::move(s) : Scenario();
  }

  VirtualFs fs_;
  VirtualNet net_;
  VirtualLibc libc_;
};

// --- scenario language ---------------------------------------------------------

TEST_F(CoreTest, ParsePaperExample) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="readTrig2" class="ReadPipe">
    <args>
      <low>1024</low>
      <high>4096</high>
    </args>
  </trigger>
  <trigger id="mutexTrig" class="WithMutex" />
  <function name="read" argc="3" return="-1" errno="EINVAL">
    <reftrigger ref="readTrig2" />
    <reftrigger ref="mutexTrig" />
  </function>
  <function name="pthread_mutex_lock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig" />
  </function>
  <function name="pthread_mutex_unlock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig" />
  </function>
</scenario>)");
  ASSERT_EQ(s.triggers().size(), 2u);
  EXPECT_EQ(s.triggers()[0].class_name, "ReadPipe");
  ASSERT_NE(s.triggers()[0].args, nullptr);
  ASSERT_EQ(s.functions().size(), 3u);
  EXPECT_EQ(s.functions()[0].function, "read");
  EXPECT_EQ(s.functions()[0].argc, 3);
  EXPECT_EQ(s.functions()[0].retval, -1);
  EXPECT_EQ(s.functions()[0].errno_value, kEINVAL);
  EXPECT_EQ(s.functions()[0].triggers.size(), 2u);
  EXPECT_TRUE(s.functions()[1].unused);
}

TEST_F(CoreTest, ParseAcceptsRetvalSpelling) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="t" class="SingletonTrigger"/>
  <function name="fopen" retval="0" errno="EINVAL">
    <reftrigger ref="t"/>
  </function>
</scenario>)");
  EXPECT_EQ(s.functions()[0].retval, 0);
  EXPECT_FALSE(s.functions()[0].unused);
}

TEST_F(CoreTest, ParseRejectsUndeclaredRef) {
  std::string error;
  auto s = Scenario::Parse(R"(
<scenario>
  <function name="read" return="-1"><reftrigger ref="ghost"/></function>
</scenario>)",
                           &error);
  EXPECT_FALSE(s.has_value());
  EXPECT_NE(error.find("ghost"), std::string::npos);
}

TEST_F(CoreTest, ParseRejectsDuplicateTriggerIds) {
  std::string error;
  auto s = Scenario::Parse(R"(
<scenario>
  <trigger id="t" class="SingletonTrigger"/>
  <trigger id="t" class="RandomTrigger"/>
</scenario>)",
                           &error);
  EXPECT_FALSE(s.has_value());
}

TEST_F(CoreTest, ScenarioXmlRoundTrip) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="a" class="RandomTrigger"><args><probability>0.5</probability></args></trigger>
  <trigger id="b" class="SingletonTrigger"/>
  <function name="read" argc="3" return="-1" errno="EIO">
    <reftrigger ref="a"/>
    <reftrigger ref="b" negate="true"/>
  </function>
</scenario>)");
  Scenario reparsed = MustParse(s.ToXml());
  ASSERT_EQ(reparsed.triggers().size(), 2u);
  ASSERT_EQ(reparsed.functions().size(), 1u);
  EXPECT_EQ(reparsed.functions()[0].errno_value, kEIO);
  ASSERT_EQ(reparsed.functions()[0].triggers.size(), 2u);
  EXPECT_TRUE(reparsed.functions()[0].triggers[1].negate);
  EXPECT_EQ(reparsed.triggers()[0].args->ChildText("probability"), "0.5");
}

// --- registry -------------------------------------------------------------------

TEST_F(CoreTest, RegistryKnowsStockTriggers) {
  auto& reg = TriggerRegistry::Instance();
  for (const char* name :
       {"CallStackTrigger", "ProgramStateTrigger", "CallCountTrigger", "SingletonTrigger",
        "RandomTrigger", "DistributedTrigger", "ReadPipe", "WithMutex",
        "ReadPipe1K4KwithMutex", "CloseAfterMutexUnlock"}) {
    EXPECT_TRUE(reg.Knows(name)) << name;
    EXPECT_NE(reg.Create(name), nullptr) << name;
  }
  EXPECT_EQ(reg.Create("NoSuchTrigger"), nullptr);
}

DECLARE_TRIGGER(TestOnlyTrigger) {
 public:
  bool Eval(VirtualLibc*, const std::string&, const ArgSpan&) override { return true; }
};
LFI_REGISTER_TRIGGER(TestOnlyTrigger);

TEST_F(CoreTest, UserTriggersRegisterByClassName) {
  EXPECT_TRUE(TriggerRegistry::Instance().Knows("TestOnlyTrigger"));
}

// --- runtime: injection mechanics ------------------------------------------------

TEST_F(CoreTest, CallCountInjection) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="c" class="CallCountTrigger"><args><count>3</count></args></trigger>
  <function name="read" return="-1" errno="EINTR"><reftrigger ref="c"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);

  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[2];
  EXPECT_EQ(libc_.Read(fd, buf, 2), 2);   // call 1
  EXPECT_EQ(libc_.Read(fd, buf, 2), 2);   // call 2
  EXPECT_EQ(libc_.Read(fd, buf, 2), -1);  // call 3: injected
  EXPECT_EQ(libc_.verrno(), kEINTR);
  EXPECT_EQ(libc_.Read(fd, buf, 2), 2);   // call 4: passes again
  libc_.set_interposer(nullptr);

  ASSERT_EQ(runtime.log().size(), 1u);
  EXPECT_EQ(runtime.log().records()[0].call_number, 3u);
  EXPECT_EQ(runtime.log().records()[0].function, "read");
  EXPECT_EQ(runtime.injections(), 1u);
}

TEST_F(CoreTest, SingletonFiresOnce) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="once" class="SingletonTrigger"/>
  <function name="malloc" return="0" errno="ENOMEM"><reftrigger ref="once"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  EXPECT_EQ(libc_.Malloc(8), nullptr);
  EXPECT_EQ(libc_.verrno(), kENOMEM);
  void* p = libc_.Malloc(8);
  EXPECT_NE(p, nullptr);
  libc_.Free(p);
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, ConjunctionRequiresAllTriggers) {
  // random(p=1) AND singleton: exactly one injection even though random
  // always votes yes.
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="always" class="RandomTrigger"><args><probability>1.0</probability></args></trigger>
  <trigger id="once" class="SingletonTrigger"/>
  <function name="close" return="-1" errno="EIO">
    <reftrigger ref="always"/>
    <reftrigger ref="once"/>
  </function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd1 = libc_.Open("/d/f", kORdOnly);
  int fd2 = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd1), -1);
  EXPECT_EQ(libc_.Close(fd2), 0);
  libc_.set_interposer(nullptr);
  EXPECT_EQ(runtime.injections(), 1u);
}

TEST_F(CoreTest, DisjunctionAcrossFunctionElements) {
  // Two <function name="read"> elements: call 2 OR call 4 fails.
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="c2" class="CallCountTrigger"><args><count>2</count></args></trigger>
  <trigger id="c4" class="CallCountTrigger"><args><count>4</count></args></trigger>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="c2"/></function>
  <function name="read" return="-1" errno="EINTR"><reftrigger ref="c4"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[1];
  EXPECT_EQ(libc_.Read(fd, buf, 1), 1);
  EXPECT_EQ(libc_.Read(fd, buf, 1), -1);
  EXPECT_EQ(libc_.verrno(), kEIO);
  EXPECT_EQ(libc_.Read(fd, buf, 1), 1);
  EXPECT_EQ(libc_.Read(fd, buf, 1), -1);
  EXPECT_EQ(libc_.verrno(), kEINTR);
  libc_.set_interposer(nullptr);
  EXPECT_EQ(runtime.injections(), 2u);
}

TEST_F(CoreTest, NegationInverts) {
  // NOT(singleton): fires on every call except the first.
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="once" class="SingletonTrigger"/>
  <function name="close" return="-1" errno="EIO">
    <reftrigger ref="once" negate="true"/>
  </function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd1 = libc_.Open("/d/f", kORdOnly);
  int fd2 = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd1), 0);   // singleton true -> negated false
  EXPECT_EQ(libc_.Close(fd2), -1);  // singleton false -> negated true
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, ShortCircuitSkipsLaterTriggers) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="never" class="RandomTrigger"><args><probability>0.0</probability></args></trigger>
  <trigger id="counter" class="CallCountTrigger"><args><count>1</count></args></trigger>
  <function name="close" return="-1">
    <reftrigger ref="never"/>
    <reftrigger ref="counter"/>
  </function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd), 0);
  libc_.set_interposer(nullptr);
  // Only the first trigger was evaluated.
  EXPECT_EQ(runtime.trigger_evaluations(), 1u);

  Runtime::Options no_sc;
  no_sc.disable_short_circuit = true;
  Runtime runtime2(s, no_sc);
  libc_.set_interposer(&runtime2);
  fd = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd), 0);
  libc_.set_interposer(nullptr);
  EXPECT_EQ(runtime2.trigger_evaluations(), 2u);
}

TEST_F(CoreTest, UnusedAssociationNeverInjects) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="always" class="RandomTrigger"><args><probability>1.0</probability></args></trigger>
  <function name="close" return="unused" errno="unused"><reftrigger ref="always"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd), 0);
  libc_.set_interposer(nullptr);
  EXPECT_EQ(runtime.injections(), 0u);
  EXPECT_GT(runtime.trigger_evaluations(), 0u);
}

TEST_F(CoreTest, DisarmedRuntimeEvaluatesButDoesNotInject) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="always" class="RandomTrigger"><args><probability>1.0</probability></args></trigger>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="always"/></function>
</scenario>)");
  Runtime runtime(s);
  runtime.set_armed(false);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[1];
  EXPECT_EQ(libc_.Read(fd, buf, 1), 1);
  libc_.set_interposer(nullptr);
  EXPECT_GT(runtime.trigger_evaluations(), 0u);
  EXPECT_EQ(runtime.injections(), 0u);
}

TEST_F(CoreTest, UnknownTriggerClassReportedAndInert) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="x" class="DoesNotExist"/>
  <function name="read" return="-1"><reftrigger ref="x"/></function>
</scenario>)");
  Runtime runtime(s);
  EXPECT_FALSE(runtime.error().empty());
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[1];
  EXPECT_EQ(libc_.Read(fd, buf, 1), 1);  // no injection
  libc_.set_interposer(nullptr);
}

// --- stock triggers ---------------------------------------------------------------

TEST_F(CoreTest, CallStackTriggerMatchesModuleAndOffset) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="site" class="CallStackTrigger">
    <args><frame><module>myapp</module><offset>a8</offset></frame></args>
  </trigger>
  <function name="fopen" return="0" errno="EINVAL"><reftrigger ref="site"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);

  {
    ScopedFrame frame(&libc_.stack(), "myapp", "save_checkpoint");
    frame.set_offset(0xa8);
    EXPECT_EQ(libc_.FOpen("/d/f", "r"), nullptr);  // injected
    frame.set_offset(0xb0);
    VFile* f = libc_.FOpen("/d/f", "r");
    EXPECT_NE(f, nullptr);  // different site: no injection
    libc_.FClose(f);
  }
  // No frame at all: no injection.
  VFile* f = libc_.FOpen("/d/f", "r");
  EXPECT_NE(f, nullptr);
  libc_.FClose(f);
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, CallStackTriggerMatchesAnyActiveFrame) {
  // "whether the intercepted call was made ... via ap_process_request_internal".
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="viaHandler" class="CallStackTrigger">
    <args><frame><function>process_request</function></frame></args>
  </trigger>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="viaHandler"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[1];
  EXPECT_EQ(libc_.Read(fd, buf, 1), 1);  // outside handler
  {
    ScopedFrame outer(&libc_.stack(), "httpd", "process_request");
    ScopedFrame inner(&libc_.stack(), "httpd", "read_body");
    EXPECT_EQ(libc_.Read(fd, buf, 1), -1);  // deep inside handler
  }
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, ProgramStateTriggerComparesGlobal) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="busy" class="ProgramStateTrigger">
    <args><var>thread_count</var><op>gt</op><value>64</value></args>
  </trigger>
  <function name="fcntl" return="-1" errno="EDEADLK"><reftrigger ref="busy"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  libc_.SetGlobal("thread_count", 10);
  EXPECT_EQ(libc_.Fcntl(fd, kFGetLk, 0), 0);
  libc_.SetGlobal("thread_count", 65);
  EXPECT_EQ(libc_.Fcntl(fd, kFGetLk, 0), -1);
  EXPECT_EQ(libc_.verrno(), kEDEADLK);
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, ProgramStateTriggerComparesTwoGlobals) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="full" class="ProgramStateTrigger">
    <args><var>numConnections</var><op>eq</op><var2>maxConnections</var2></args>
  </trigger>
  <function name="socket" return="-1" errno="EMFILE"><reftrigger ref="full"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  libc_.SetGlobal("numConnections", 5);
  libc_.SetGlobal("maxConnections", 10);
  EXPECT_GE(libc_.Socket(), 0);
  libc_.SetGlobal("numConnections", 10);
  EXPECT_EQ(libc_.Socket(), -1);
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, RandomTriggerRespectsProbability) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="r" class="RandomTrigger">
    <args><probability>0.25</probability><seed>777</seed></args>
  </trigger>
  <function name="close" return="-1" errno="EIO"><reftrigger ref="r"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int failures = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    int fd = libc_.Open("/d/f", kORdOnly);
    if (libc_.Close(fd) == -1) {
      ++failures;
      libc_.set_interposer(nullptr);
      libc_.Close(fd);
      libc_.set_interposer(&runtime);
    }
  }
  libc_.set_interposer(nullptr);
  double rate = static_cast<double>(failures) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST_F(CoreTest, ReadPipeTriggerChecksFdTypeAndSize) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="rp" class="ReadPipe">
    <args><low>4</low><high>8</high></args>
  </trigger>
  <function name="read" argc="3" return="-1" errno="EINVAL"><reftrigger ref="rp"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  char buf[16];
  // Regular file: no injection regardless of size.
  int fd = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Read(fd, buf, 6), 6);
  // Pipe with size in range: injected.
  int pipefd[2];
  ASSERT_EQ(libc_.Pipe(pipefd), 0);
  libc_.Write(pipefd[1], "abcdefgh", 8);
  EXPECT_EQ(libc_.Read(pipefd[0], buf, 6), -1);
  EXPECT_EQ(libc_.verrno(), kEINVAL);
  // Pipe with size out of range: passes.
  EXPECT_EQ(libc_.Read(pipefd[0], buf, 16), 8);
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, ReadPipeWithMutexComposition) {
  // The §4.2 composition: ReadPipe AND WithMutex.
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="readTrig2" class="ReadPipe">
    <args><low>1024</low><high>4096</high></args>
  </trigger>
  <trigger id="mutexTrig" class="WithMutex"/>
  <function name="read" argc="3" return="-1" errno="EINVAL">
    <reftrigger ref="readTrig2"/>
    <reftrigger ref="mutexTrig"/>
  </function>
  <function name="pthread_mutex_lock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig"/>
  </function>
  <function name="pthread_mutex_unlock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig"/>
  </function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);

  int pipefd[2];
  ASSERT_EQ(libc_.Pipe(pipefd), 0);
  std::string payload(2048, 'x');
  libc_.Write(pipefd[1], payload.data(), payload.size());
  char buf[4096];

  // Without the mutex: no injection.
  EXPECT_EQ(libc_.Read(pipefd[0], buf, 2048), 2048);

  // Holding the mutex: injection.
  VMutex m{"m", 0};
  libc_.MutexLock(&m);
  libc_.Write(pipefd[1], payload.data(), payload.size());
  libc_.Lseek(pipefd[0], 0, kSeekSet);
  EXPECT_EQ(libc_.Read(pipefd[0], buf, 2048), -1);
  EXPECT_EQ(libc_.verrno(), kEINVAL);
  libc_.MutexUnlock(&m);

  // After unlock: no injection again.
  EXPECT_EQ(libc_.Read(pipefd[0], buf, 2048), 2048);
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, Paper31MonolithicTriggerBehavesLikeComposition) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="t" class="ReadPipe1K4KwithMutex"/>
  <function name="read" argc="3" return="-1" errno="EINVAL"><reftrigger ref="t"/></function>
  <function name="pthread_mutex_lock" return="unused" errno="unused"><reftrigger ref="t"/></function>
  <function name="pthread_mutex_unlock" return="unused" errno="unused"><reftrigger ref="t"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int pipefd[2];
  ASSERT_EQ(libc_.Pipe(pipefd), 0);
  std::string payload(1024, 'y');
  libc_.Write(pipefd[1], payload.data(), payload.size());
  char buf[4096];
  VMutex m{"m", 0};
  libc_.MutexLock(&m);
  EXPECT_EQ(libc_.Read(pipefd[0], buf, 1024), -1);
  libc_.MutexUnlock(&m);
  EXPECT_EQ(libc_.Read(pipefd[0], buf, 1024), 1024);
  libc_.set_interposer(nullptr);
}

TEST_F(CoreTest, DistributedTriggerConsultsController) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="dist" class="DistributedTrigger"/>
  <function name="sendto" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
</scenario>)");
  Runtime runtime(s);
  BlackoutController controller("app");
  libc_.SetService(DistributedController::kServiceName, &controller);
  libc_.set_interposer(&runtime);
  int sock = libc_.Socket();
  libc_.BindSocket(sock, 9);
  EXPECT_EQ(libc_.SendTo(sock, "x", 1, 10), -1);  // node "app" is blacked out
  EXPECT_GT(controller.consultations(), 0u);
  libc_.set_interposer(nullptr);

  VirtualLibc other(&fs_, &net_, "other");
  other.SetService(DistributedController::kServiceName, &controller);
  Runtime runtime2(s);
  other.set_interposer(&runtime2);
  int sock2 = other.Socket();
  other.BindSocket(sock2, 11);
  EXPECT_EQ(other.SendTo(sock2, "x", 1, 10), 1);  // other node passes
  other.set_interposer(nullptr);
}

TEST_F(CoreTest, RotatingBlackoutRotatesAfterBurst) {
  RotatingBlackoutController controller({"r1", "r2"}, 3);
  ArgVec args;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(controller.ShouldInject("r1", "sendto", args));
  }
  // Burst exhausted: target moved to r2.
  EXPECT_FALSE(controller.ShouldInject("r1", "sendto", args));
  EXPECT_TRUE(controller.ShouldInject("r2", "sendto", args));
}

// --- log & replay ------------------------------------------------------------------

TEST_F(CoreTest, LogCapturesStackAndSideEffects) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="c" class="CallCountTrigger"><args><count>1</count></args></trigger>
  <function name="fopen" return="0" errno="EMFILE"><reftrigger ref="c"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  {
    ScopedFrame frame(&libc_.stack(), "myapp", "init");
    frame.set_offset(0x40);
    EXPECT_EQ(libc_.FOpen("/d/f", "r"), nullptr);
  }
  libc_.set_interposer(nullptr);
  ASSERT_EQ(runtime.log().size(), 1u);
  const InjectionRecord& rec = runtime.log().records()[0];
  EXPECT_EQ(rec.errno_value, kEMFILE);
  ASSERT_EQ(rec.stack.size(), 1u);
  EXPECT_EQ(rec.stack[0].module, "myapp");
  EXPECT_EQ(rec.stack[0].offset, 0x40u);
  std::string text = runtime.log().ToString();
  EXPECT_NE(text.find("fopen"), std::string::npos);
  EXPECT_NE(text.find("EMFILE"), std::string::npos);
  EXPECT_NE(text.find("myapp!init+0x40"), std::string::npos);
}

TEST_F(CoreTest, ReplayScenarioReproducesInjection) {
  // Inject randomly, then replay the logged injection deterministically.
  Scenario random_scenario = MustParse(R"(
<scenario>
  <trigger id="r" class="RandomTrigger"><args><probability>0.2</probability><seed>5</seed></args></trigger>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="r"/></function>
</scenario>)");
  Runtime runtime(random_scenario);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[1];
  int first_failure = -1;
  for (int i = 0; i < 100; ++i) {
    libc_.Lseek(fd, 0, kSeekSet);
    if (libc_.Read(fd, buf, 1) == -1 && first_failure < 0) {
      first_failure = i;
      break;
    }
  }
  libc_.set_interposer(nullptr);
  ASSERT_GE(first_failure, 0);
  ASSERT_EQ(runtime.log().size(), 1u);

  Scenario replay = runtime.log().ReplayScenario(0);
  Runtime replay_runtime(replay);
  libc_.ResetCallCounts();  // fresh-process semantics for the replay run
  libc_.set_interposer(&replay_runtime);
  int observed_failure = -1;
  for (int i = 0; i <= first_failure; ++i) {
    libc_.Lseek(fd, 0, kSeekSet);
    if (libc_.Read(fd, buf, 1) == -1) {
      observed_failure = i;
      break;
    }
  }
  libc_.set_interposer(nullptr);
  EXPECT_EQ(observed_failure, first_failure);
}

// --- controller ------------------------------------------------------------------------

TEST_F(CoreTest, ControllerReportsNormalExit) {
  TestController controller(MustParse("<scenario/>"));
  TestOutcome outcome = controller.RunTest(&libc_, [] { return true; });
  EXPECT_EQ(outcome.status, ExitStatus::kNormal);
  EXPECT_EQ(outcome.injections, 0u);
}

TEST_F(CoreTest, ControllerCatchesCrash) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="c" class="CallCountTrigger"><args><count>1</count></args></trigger>
  <function name="opendir" return="0" errno="ENOMEM"><reftrigger ref="c"/></function>
</scenario>)");
  TestController controller(s);
  TestOutcome outcome = controller.RunTest(&libc_, [this] {
    // Buggy code: readdir(opendir(...)) without checking (the Git bug).
    VDir* d = libc_.OpenDir("/d");
    libc_.ReadDir(d);
    return true;
  });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_EQ(outcome.crash_kind, CrashKind::kSegfault);
  EXPECT_EQ(outcome.injections, 1u);
  // Interposer restored even after the crash.
  EXPECT_EQ(libc_.interposer(), nullptr);
}

TEST_F(CoreTest, ControllerReportsWorkloadError) {
  TestController controller(MustParse("<scenario/>"));
  TestOutcome outcome = controller.RunTest(&libc_, [] { return false; });
  EXPECT_EQ(outcome.status, ExitStatus::kWorkloadError);
}

TEST_F(CoreTest, LinearLookupAblationBehavesIdentically) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="c" class="CallCountTrigger"><args><count>2</count></args></trigger>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="c"/></function>
</scenario>)");
  Runtime::Options linear;
  linear.linear_lookup = true;
  Runtime runtime(s, linear);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[1];
  EXPECT_EQ(libc_.Read(fd, buf, 1), 1);
  EXPECT_EQ(libc_.Read(fd, buf, 1), -1);
  libc_.set_interposer(nullptr);
}

}  // namespace
}  // namespace lfi
