#include <gtest/gtest.h>

#include "analysis/callsite_analyzer.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "image/assembler.h"

namespace lfi {
namespace {

Image Asm(const std::string& body) {
  AsmError error;
  auto image = Assemble(body, &error);
  EXPECT_TRUE(image.has_value()) << error.message << " at line " << error.line;
  return std::move(*image);
}

// Convenience: analyze the single call site of `function` in `image`.
CallSiteReport AnalyzeOne(const Image& image, const std::string& function,
                          const std::set<int64_t>& error_codes) {
  CallSiteAnalyzer analyzer;
  auto reports = analyzer.Analyze(image, function, error_codes);
  EXPECT_EQ(reports.size(), 1u);
  return reports.empty() ? CallSiteReport{} : reports[0];
}

TEST(Cfg, StraightLine) {
  Image image = Asm(R"(
module m
func f
  call read
  movi r1, 0
  movi r2, 0
  ret
end
)");
  PartialCfg cfg = BuildPartialCfg(image, kInstrSize);
  EXPECT_EQ(cfg.nodes().size(), 3u);  // movi, movi, ret
  const CfgNode* entry = cfg.node(kInstrSize);
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->succs.size(), 1u);
}

TEST(Cfg, BranchBothWays) {
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, -1
  je .err
  movi r1, 0
  ret
.err:
  movi r1, 1
  ret
end
)");
  PartialCfg cfg = BuildPartialCfg(image, kInstrSize);
  const CfgNode* branch = cfg.node(2 * kInstrSize);
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->succs.size(), 2u);
  EXPECT_EQ(cfg.nodes().size(), 6u);
}

TEST(Cfg, WindowLimitRespected) {
  std::string body = "module m\nfunc f\n  call read\n";
  for (int i = 0; i < 300; ++i) {
    body += "  nop\n";
  }
  body += "  ret\nend\n";
  Image image = Asm(body);
  PartialCfg cfg = BuildPartialCfg(image, kInstrSize, 100);
  EXPECT_LE(cfg.nodes().size(), 100u);
}

TEST(Cfg, LoopDoesNotDiverge) {
  Image image = Asm(R"(
module m
func f
  call read
.loop:
  addi r1, 1
  cmpi r1, 10
  jl .loop
  ret
end
)");
  PartialCfg cfg = BuildPartialCfg(image, kInstrSize);
  EXPECT_EQ(cfg.nodes().size(), 4u);
}

TEST(Dataflow, DirectEqualityCheck) {
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, -1
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.chk_eq.count(-1));
  EXPECT_FALSE(flow.has_ineq_check);
}

TEST(Dataflow, InequalityCheck) {
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, 0
  jl .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.has_ineq_check);
  EXPECT_TRUE(flow.chk_ineq.count(0));
}

TEST(Dataflow, SignTestIsInequality) {
  Image image = Asm(R"(
module m
func f
  call read
  test r0, r0
  js .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.has_ineq_check);
}

TEST(Dataflow, TestWithJeIsZeroEquality) {
  Image image = Asm(R"(
module m
func f
  call malloc
  test r0, r0
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.chk_eq.count(0));
  EXPECT_FALSE(flow.has_ineq_check);
}

TEST(Dataflow, CopyThroughRegister) {
  Image image = Asm(R"(
module m
func f
  call read
  mov r6, r0
  movi r0, 7
  cmpi r6, -1
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.chk_eq.count(-1));
}

TEST(Dataflow, SpillAndReloadThroughStack) {
  Image image = Asm(R"(
module m
func f
  call read
  store [sp+8], r0
  call write
  load r2, [sp+8]
  cmpi r2, -1
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  // The copy survived the second call on the stack even though r0 was
  // clobbered.
  EXPECT_TRUE(flow.chk_eq.count(-1));
}

TEST(Dataflow, CallClobbersRetReg) {
  Image image = Asm(R"(
module m
func f
  call read
  call write
  cmpi r0, -1
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  // The compare checks write()'s return, not read()'s: no check recorded.
  EXPECT_TRUE(flow.chk_eq.empty());
}

TEST(Dataflow, CalleeSavedSurvivesCall) {
  Image image = Asm(R"(
module m
func f
  call read
  mov r7, r0
  call write
  cmpi r7, -1
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.chk_eq.count(-1));
}

TEST(Dataflow, ArithmeticKillsValue) {
  Image image = Asm(R"(
module m
func f
  call read
  addi r0, 5
  cmpi r0, -1
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.chk_eq.empty());
}

TEST(Dataflow, OverwriteKillsValue) {
  Image image = Asm(R"(
module m
func f
  call read
  movi r0, 3
  cmpi r0, -1
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.chk_eq.empty());
}

TEST(Dataflow, LoopReachesFixpoint) {
  Image image = Asm(R"(
module m
func f
  call read
  mov r6, r0
.loop:
  mov r7, r6
  addi r1, 1
  cmpi r1, 4
  jl .loop
  cmpi r7, -1
  je .err
  ret
.err:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.chk_eq.count(-1));
  EXPECT_GT(flow.iterations, 0);
}

TEST(Dataflow, MultipleChecksOnDifferentPaths) {
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, -1
  je .a
  cmpi r0, 0
  je .b
  ret
.a:
  ret
.b:
  ret
end
)");
  DataflowResult flow = AnalyzeReturnValueFlow(BuildPartialCfg(image, kInstrSize));
  EXPECT_TRUE(flow.chk_eq.count(-1));
  EXPECT_TRUE(flow.chk_eq.count(0));
}

// --- Algorithm 1 classification ------------------------------------------------

TEST(CallSiteAnalyzer, FindsAllSites) {
  Image image = Asm(R"(
module m
func f
  call read
  call write
  call read
  ret
end
)");
  auto sites = CallSiteAnalyzer::FindCallSites(image, "read");
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].offset, 0u);
  EXPECT_EQ(sites[1].offset, 2 * kInstrSize);
  EXPECT_EQ(sites[0].enclosing, "f");
  EXPECT_EQ(sites[0].module, "m");
}

TEST(CallSiteAnalyzer, NoSitesForUnimportedFunction) {
  Image image = Asm("module m\nfunc f\n  ret\nend\n");
  EXPECT_TRUE(CallSiteAnalyzer::FindCallSites(image, "read").empty());
}

TEST(CallSiteAnalyzer, FullyCheckedByEquality) {
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, -1
  je .err
  ret
.err:
  ret
end
)");
  auto report = AnalyzeOne(image, "read", {-1});
  EXPECT_EQ(report.check_class, CheckClass::kFull);
  EXPECT_TRUE(report.missing_codes.empty());
}

TEST(CallSiteAnalyzer, FullyCheckedByInequality) {
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, 0
  jl .err
  ret
.err:
  ret
end
)");
  // Inequality covers the whole error range (Algorithm 1 line 6).
  auto report = AnalyzeOne(image, "read", {-1, 0});
  EXPECT_EQ(report.check_class, CheckClass::kFull);
}

TEST(CallSiteAnalyzer, PartiallyChecked) {
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, -1
  je .err
  ret
.err:
  ret
end
)");
  auto report = AnalyzeOne(image, "read", {-1, 0});
  EXPECT_EQ(report.check_class, CheckClass::kPartial);
  EXPECT_EQ(report.missing_codes, std::set<int64_t>{0});
}

TEST(CallSiteAnalyzer, CompletelyUnchecked) {
  Image image = Asm(R"(
module m
func f
  call read
  movi r1, 0
  ret
end
)");
  auto report = AnalyzeOne(image, "read", {-1});
  EXPECT_EQ(report.check_class, CheckClass::kNone);
  EXPECT_EQ(report.missing_codes, std::set<int64_t>{-1});
}

TEST(CallSiteAnalyzer, CheckOutsideErrorSetIsStillUnchecked) {
  // Algorithm 1 lines 10-11: checking codes outside E does not count.
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, 17
  je .x
  ret
.x:
  ret
end
)");
  auto report = AnalyzeOne(image, "read", {-1});
  EXPECT_EQ(report.check_class, CheckClass::kNone);
}

TEST(CallSiteAnalyzer, StatsPopulated) {
  Image image = Asm(R"(
module m
func f
  call read
  cmpi r0, -1
  je .e
  ret
.e:
  ret
end
)");
  CallSiteAnalyzer analyzer;
  AnalyzerStats stats;
  analyzer.Analyze(image, "read", {-1}, &stats);
  EXPECT_EQ(stats.call_sites, 1u);
  EXPECT_GT(stats.instructions_visited, 0u);
  EXPECT_GT(stats.dataflow_iterations, 0);
}

TEST(CallSiteAnalyzer, IndirectCallsIgnored) {
  // An indirect call between the site and the check is treated as opaque
  // (clobbers caller-saved registers) but does not break the CFG.
  Image image = Asm(R"(
module m
func f
  call read
  mov r6, r0
  callr r3
  cmpi r6, -1
  je .e
  ret
.e:
  ret
end
)");
  auto report = AnalyzeOne(image, "read", {-1});
  EXPECT_EQ(report.check_class, CheckClass::kFull);
}

}  // namespace
}  // namespace lfi
