// Property sweep over the PBFT implementation: across seeds and fault
// regimes, safety must hold -- replicas never diverge on the executed prefix
// (equal execution counts imply equal state digests), the client never
// completes a request the replicas did not execute, and the debug build
// never crashes.

#include <gtest/gtest.h>

#include <memory>

#include "apps/pbft/pbft.h"
#include "core/distributed.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"

namespace lfi {
namespace {

Scenario DistScenario() {
  return *Scenario::Parse(R"(
<scenario>
  <trigger id="dist" class="DistributedTrigger"/>
  <function name="sendto" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
  <function name="recvfrom" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
</scenario>)");
}

struct SweepCase {
  uint64_t seed;
  double loss;
};

class PbftSafetySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PbftSafetySweep, SafetyUnderInjectedLoss) {
  EnsureStockTriggersRegistered();
  const SweepCase& c = GetParam();
  VirtualFs fs;
  VirtualNet net(c.seed);
  PbftConfig config;
  config.debug_build = true;  // halting allowed; crashing is not
  PbftCluster cluster(&fs, &net, config);
  ASSERT_TRUE(cluster.Start());

  Scenario scenario = DistScenario();
  RandomLossController controller(c.loss, c.seed * 131);
  std::vector<std::unique_ptr<Runtime>> runtimes;
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
    runtimes.push_back(std::make_unique<Runtime>(scenario));
    cluster.replica(i).libc().set_interposer(runtimes.back().get());
  }
  cluster.RunWorkload(/*requests=*/25, /*max_ticks=*/6000);

  // Debug build never crashes.
  EXPECT_FALSE(cluster.crashed()) << cluster.crash_reason();

  // Validity: a completed request implies at least f+1 replicas executed it.
  int64_t max_executed = 0;
  for (int i = 0; i < cluster.n(); ++i) {
    max_executed = std::max(max_executed, cluster.replica(i).executed());
  }
  EXPECT_LE(cluster.client().completed(), max_executed);

  // Agreement: all non-halted replicas that executed N requests have the
  // same execution count ordering; at least 2f+1 replicas keep running.
  int live = 0;
  for (int i = 0; i < cluster.n(); ++i) {
    if (!cluster.replica(i).halted()) {
      ++live;
    }
  }
  EXPECT_GE(live, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, PbftSafetySweep,
    ::testing::Values(SweepCase{1, 0.0}, SweepCase{2, 0.05}, SweepCase{3, 0.15},
                      SweepCase{4, 0.3}, SweepCase{5, 0.3}, SweepCase{6, 0.45},
                      SweepCase{7, 0.45}, SweepCase{8, 0.6}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100));
    });

TEST(PbftDeterminism, SameSeedSameOutcome) {
  EnsureStockTriggersRegistered();
  auto run = [] {
    VirtualFs fs;
    VirtualNet net(77);
    PbftConfig config;
    config.debug_build = true;
    PbftCluster cluster(&fs, &net, config);
    EXPECT_TRUE(cluster.Start());
    Scenario scenario = DistScenario();
    RandomLossController controller(0.25, 909);
    std::vector<std::unique_ptr<Runtime>> runtimes;
    for (int i = 0; i < cluster.n(); ++i) {
      cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
      runtimes.push_back(std::make_unique<Runtime>(scenario));
      cluster.replica(i).libc().set_interposer(runtimes.back().get());
    }
    int ticks = cluster.RunWorkload(15, 6000);
    return std::make_pair(ticks, cluster.client().completed());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);  // the whole stack is deterministic under a fixed seed
}

TEST(PbftVnet, TickDeliveryDelaysByOneTick) {
  VirtualFs fs;
  VirtualNet net(5);
  net.set_tick_delivery(true);
  VirtualLibc a(&fs, &net, "a");
  VirtualLibc b(&fs, &net, "b");
  int sa = a.Socket();
  int sb = b.Socket();
  ASSERT_EQ(a.BindSocket(sa, 1), 0);
  ASSERT_EQ(b.BindSocket(sb, 2), 0);
  EXPECT_EQ(a.SendTo(sa, "x", 1, 2), 1);
  char buf[4];
  // Not yet delivered...
  EXPECT_EQ(b.RecvFrom(sb, buf, 4, nullptr), -1);
  net.AdvanceTick();
  // ...now it is.
  EXPECT_EQ(b.RecvFrom(sb, buf, 4, nullptr), 1);
}

}  // namespace
}  // namespace lfi
