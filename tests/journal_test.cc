// The persistent campaign journal: XML round trips for every serialized
// artifact (property-style, over randomized values including attribute
// escaping edge cases), journal file append/load/torn-tail semantics, the
// kill-and-resume determinism contract, disk-only replay of journaled
// injections, and JournalSource seeding/sharding.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/common/bug_campaign.h"
#include "apps/common/campaign_spec.h"
#include "core/campaign_engine.h"
#include "core/exploration.h"
#include "core/injection_log.h"
#include "core/journal.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "coverage/coverage.h"
#include "profiler/fault_profile.h"
#include "util/errno_codes.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace lfi {
namespace {

// Strings exercising every attribute-escaping edge the XML layer must
// survive: the five predefined entities, control characters, and the comma
// that used to make trigger-id lists ambiguous.
const char* const kNastyStrings[] = {
    "plain",          "with space",       "quo\"te",        "apos'trophe",
    "amp&ersand",     "less<than",        "greater>than",   "comma,separated",
    "new\nline",      "tab\tchar",        "ctrl\x01char",   "mixed<&\"'\x02>end",
};

std::string NastyString(Rng& rng) {
  return kNastyStrings[rng.NextBelow(std::size(kNastyStrings))];
}

const int kErrnoPool[] = {0, kEIO, kENOMEM, kEINTR, 7, 123};  // named + fallback-coded

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

void ExpectSameBugs(const std::vector<FoundBug>& a, const std::vector<FoundBug>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].system, b[i].system) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].where, b[i].where) << i;
    EXPECT_EQ(a[i].injected, b[i].injected) << i;
  }
}

// --- property-style XML round trips ----------------------------------------

Scenario RandomScenario(Rng& rng) {
  Scenario scenario;
  size_t triggers = 1 + rng.NextBelow(3);
  for (size_t i = 0; i < triggers; ++i) {
    TriggerDecl decl;
    decl.id = NastyString(rng) + StrFormat("-%zu", i);  // unique per scenario
    decl.class_name = rng.Chance(0.5) ? "CallCountTrigger" : NastyString(rng);
    if (rng.Chance(0.5)) {
      auto args = std::make_unique<XmlNode>("args");
      args->AddChild("count")->set_text(StrFormat("%llu", (unsigned long long)rng.NextBelow(9)));
      args->AddChild("extra")->SetAttr("value", NastyString(rng));
      decl.args = std::shared_ptr<XmlNode>(args.release());
    }
    scenario.AddTrigger(std::move(decl));
  }
  size_t functions = 1 + rng.NextBelow(4);
  for (size_t i = 0; i < functions; ++i) {
    FunctionAssoc assoc;
    assoc.function = rng.Chance(0.3) ? NastyString(rng) : StrFormat("fn_%zu", i);
    assoc.argc = static_cast<int>(rng.NextBelow(4));
    if (rng.Chance(0.2)) {
      assoc.unused = true;
    } else {
      assoc.retval = rng.NextInRange(-1000000, 1000000);
      assoc.errno_value = kErrnoPool[rng.NextBelow(std::size(kErrnoPool))];
    }
    size_t refs = 1 + rng.NextBelow(scenario.triggers().size());
    for (size_t r = 0; r < refs; ++r) {
      TriggerRef ref;
      ref.ref = scenario.triggers()[rng.NextBelow(scenario.triggers().size())].id;
      ref.negate = rng.Chance(0.25);
      assoc.triggers.push_back(ref);
    }
    scenario.AddFunction(std::move(assoc));
  }
  return scenario;
}

TEST(XmlRoundTrip, RandomScenariosParseBackEqual) {
  Rng rng(2026);
  for (int iteration = 0; iteration < 100; ++iteration) {
    Scenario scenario = RandomScenario(rng);
    std::string xml = scenario.ToXml();
    std::string error;
    auto parsed = Scenario::Parse(xml, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << xml;
    EXPECT_TRUE(*parsed == scenario) << xml;
    // Serialization is canonical: a second trip is byte-stable.
    EXPECT_EQ(parsed->ToXml(), xml);
  }
}

TEST(XmlRoundTrip, RandomFaultProfilesParseBackEqual) {
  Rng rng(42);
  for (int iteration = 0; iteration < 100; ++iteration) {
    FaultProfile profile(NastyString(rng));
    size_t functions = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < functions; ++i) {
      FunctionProfile fn;
      fn.name = rng.Chance(0.3) ? NastyString(rng) + StrFormat("%zu", i)
                                : StrFormat("fn_%zu", i);
      size_t errors = rng.NextBelow(3);
      for (size_t e = 0; e < errors; ++e) {
        ErrorSpec spec;
        spec.retval = rng.NextInRange(-100, 0);
        size_t errnos = rng.NextBelow(3);
        for (size_t n = 0; n < errnos; ++n) {
          int value = kErrnoPool[1 + rng.NextBelow(std::size(kErrnoPool) - 1)];
          spec.errnos.push_back(value);
        }
        fn.errors.push_back(std::move(spec));
      }
      if (rng.Chance(0.5)) {
        fn.success_constants.push_back(rng.NextInRange(0, 10));
      }
      fn.has_computed_success = rng.Chance(0.5);
      profile.AddFunction(std::move(fn));
    }
    std::string xml = profile.ToXml();
    std::string error;
    auto parsed = FaultProfile::FromXml(xml, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << xml;
    EXPECT_EQ(parsed->library(), profile.library());
    EXPECT_EQ(parsed->functions().size(), profile.functions().size());
    EXPECT_EQ(parsed->ToXml(), xml);
  }
}

InjectionLog RandomInjectionLog(Rng& rng) {
  InjectionLog log;
  size_t records = rng.NextBelow(4);
  for (size_t i = 0; i < records; ++i) {
    InjectionRecord record;
    record.sequence = i + 1;
    record.function = rng.Chance(0.3) ? NastyString(rng) : StrFormat("call_%zu", i);
    record.retval = rng.NextInRange(-1000, 1000);
    record.errno_value = kErrnoPool[rng.NextBelow(std::size(kErrnoPool))];
    size_t triggers = rng.NextBelow(3);
    for (size_t t = 0; t < triggers; ++t) {
      record.trigger_ids.push_back(NastyString(rng));
    }
    record.call_number = 1 + rng.NextBelow(100);
    size_t frames = rng.NextBelow(3);
    for (size_t f = 0; f < frames; ++f) {
      record.stack.push_back(StackFrame{NastyString(rng), StrFormat("frame_%zu", f),
                                        static_cast<uint32_t>(rng.NextBelow(0x1000))});
    }
    if (rng.Chance(0.5)) {
      record.process = NastyString(rng);
    }
    log.Record(std::move(record));
  }
  return log;
}

TEST(XmlRoundTrip, RandomInjectionLogsParseBackEqual) {
  Rng rng(7);
  for (int iteration = 0; iteration < 100; ++iteration) {
    InjectionLog log = RandomInjectionLog(rng);
    std::string xml = log.ToXml();
    std::string error;
    auto parsed = InjectionLog::Parse(xml, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << xml;
    EXPECT_TRUE(*parsed == log) << xml;
  }
}

// The satellite regression: {"a,b"} and {"a","b"} used to serialize to the
// same comma-joined string. As a vector they must stay distinguishable.
TEST(XmlRoundTrip, CommaBearingTriggerIdsStayUnambiguous) {
  InjectionRecord joined;
  joined.sequence = 1;
  joined.function = "read";
  joined.call_number = 1;
  joined.trigger_ids = {"a,b"};
  InjectionRecord split = joined;
  split.trigger_ids = {"a", "b"};

  InjectionLog log_joined;
  log_joined.Record(joined);
  InjectionLog log_split;
  log_split.Record(split);
  ASSERT_NE(log_joined.ToXml(), log_split.ToXml());

  auto joined_back = InjectionLog::Parse(log_joined.ToXml());
  auto split_back = InjectionLog::Parse(log_split.ToXml());
  ASSERT_TRUE(joined_back && split_back);
  EXPECT_EQ(joined_back->records()[0].trigger_ids, std::vector<std::string>{"a,b"});
  EXPECT_EQ(split_back->records()[0].trigger_ids, (std::vector<std::string>{"a", "b"}));
  // The human-readable line is unchanged for the common (comma-free) case.
  EXPECT_NE(log_joined.ToString().find("triggers: a,b"), std::string::npos);
}

TEST(XmlRoundTrip, FoundBugAndRunFeedbackParseBackEqual) {
  Rng rng(11);
  for (int iteration = 0; iteration < 50; ++iteration) {
    FoundBug bug{NastyString(rng), NastyString(rng), NastyString(rng), NastyString(rng)};
    auto bug_back = FoundBug::Parse(bug.ToXml());
    ASSERT_TRUE(bug_back.has_value()) << bug.ToXml();
    EXPECT_TRUE(*bug_back == bug) << bug.ToXml();

    RunFeedback feedback;
    feedback.new_bug = rng.Chance(0.5);
    feedback.injections = rng.NextBelow(10);
    feedback.fingerprint = rng.Chance(0.5) ? NastyString(rng) : "";
    size_t blocks = rng.NextBelow(3);
    for (size_t i = 0; i < blocks; ++i) {
      feedback.new_blocks.push_back(NastyString(rng));
    }
    auto feedback_back = RunFeedback::Parse(feedback.ToXml());
    ASSERT_TRUE(feedback_back.has_value()) << feedback.ToXml();
    EXPECT_TRUE(*feedback_back == feedback) << feedback.ToXml();
  }
}

TEST(XmlRoundTrip, CoverageMapParseBackEqual) {
  CoverageMap map;
  map.RegisterBlock("app.normal", /*recovery=*/false, /*lines=*/3);
  map.RegisterBlock("app.recovery", /*recovery=*/true, /*lines=*/7);
  map.RegisterBlock("app.unhit", /*recovery=*/true, /*lines=*/2);
  map.Hit("app.normal");
  map.Hit("app.recovery");
  map.Hit("app.recovery");

  std::string error;
  auto parsed = CoverageMap::Parse(map.ToXml(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->hits(), map.hits());
  CoverageMap::Stats want = map.ComputeStats();
  CoverageMap::Stats got = parsed->ComputeStats();
  EXPECT_EQ(got.total_blocks, want.total_blocks);
  EXPECT_EQ(got.covered_blocks, want.covered_blocks);
  EXPECT_EQ(got.recovery_blocks, want.recovery_blocks);
  EXPECT_EQ(got.covered_recovery_blocks, want.covered_recovery_blocks);
  EXPECT_EQ(got.total_lines, want.total_lines);
  EXPECT_EQ(parsed->ToXml(), map.ToXml());

  // The journal's actual use: absorbing a parsed map must equal absorbing
  // the original (registrations and hit counts both carried over).
  CoverageMap absorb_original;
  absorb_original.Absorb(map);
  CoverageMap absorb_parsed;
  absorb_parsed.Absorb(*parsed);
  EXPECT_EQ(absorb_parsed.hits(), absorb_original.hits());
  EXPECT_EQ(absorb_parsed.ComputeStats().recovery_blocks,
            absorb_original.ComputeStats().recovery_blocks);
}

// --- journal file semantics -------------------------------------------------

JournalRecord MakeRecord(Rng& rng, const std::string& label) {
  JournalRecord record;
  record.label = label;
  record.seed = rng.Next();  // full-range: exercises the hex seed encoding
  record.scenario = RandomScenario(rng);
  record.result.fingerprint = NastyString(rng);
  record.result.injections = rng.NextBelow(5);
  record.result.bugs.push_back(
      FoundBug{"git", NastyString(rng), NastyString(rng), label});
  record.result.log = RandomInjectionLog(rng);
  record.result.coverage.RegisterBlock("j.block", true, 4);
  record.result.coverage.Hit("j.block");
  record.feedback.new_bug = true;
  record.feedback.injections = record.result.injections;
  record.feedback.new_blocks = {"j.block"};
  return record;
}

TEST(CampaignJournal, CreateAppendLoadRoundTrips) {
  Rng rng(5);
  std::string path = TempPath("journal_roundtrip.xml");
  JournalMetadata meta = {{"command", "explore"}, {"system", "git"}, {"note", NastyString(rng)}};

  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Create(path, meta, &error)) << error;
  std::vector<JournalRecord> written;
  for (int i = 0; i < 4; ++i) {
    written.push_back(MakeRecord(rng, StrFormat("job-%d", i)));
    ASSERT_TRUE(journal.Append(written.back()));
  }
  JournalRecord gated;
  gated.label = "gated-job";
  gated.seed = 99;
  gated.gated = true;
  gated.scenario = RandomScenario(rng);
  ASSERT_TRUE(journal.Append(gated));
  // Extent journals buffer the open extent; Finalize seals it and writes the
  // footer index (the engine does this via JournalHook::Finish).
  ASSERT_TRUE(journal.Finalize(&error)) << error;

  auto loaded = CampaignJournal::Load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->metadata(), meta);
  EXPECT_EQ(loaded->Meta("system"), "git");
  ASSERT_EQ(loaded->records().size(), 5u);
  for (size_t i = 0; i < written.size(); ++i) {
    const JournalRecord& got = loaded->records()[i];
    EXPECT_EQ(got.label, written[i].label);
    EXPECT_EQ(got.seed, written[i].seed);
    EXPECT_FALSE(got.gated);
    EXPECT_TRUE(got.scenario == written[i].scenario);
    EXPECT_EQ(got.result.fingerprint, written[i].result.fingerprint);
    EXPECT_EQ(got.result.injections, written[i].result.injections);
    ASSERT_EQ(got.result.bugs.size(), written[i].result.bugs.size());
    EXPECT_TRUE(got.result.bugs[0] == written[i].result.bugs[0]);
    EXPECT_TRUE(got.result.log == written[i].result.log);
    EXPECT_EQ(got.result.coverage.hits(), written[i].result.coverage.hits());
    EXPECT_TRUE(got.feedback == written[i].feedback);
  }
  EXPECT_TRUE(loaded->records()[4].gated);
  EXPECT_EQ(loaded->records()[4].label, "gated-job");
}

TEST(CampaignJournal, TornTrailingRecordIsDropped) {
  Rng rng(6);
  std::string path = TempPath("journal_torn.xml");
  CampaignJournal journal;
  // Torn-XML surgery below: this test is about the XML torn-tail scan, so
  // pin the debug encoding (extent recovery is covered in extent_journal_test).
  ASSERT_TRUE(journal.Create(path, {{"command", "explore"}, {"system", "git"}}, nullptr,
                             JournalFormat::kXml));
  ASSERT_TRUE(journal.Append(MakeRecord(rng, "complete-1")));
  ASSERT_TRUE(journal.Append(MakeRecord(rng, "complete-2")));
  {
    // A kill mid-write leaves a half-serialized record at the tail.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "<record label=\"torn\" seed=\"0x1\">\n  <scenario>\n    <trigger id=\"x";
  }
  std::string error;
  auto loaded = CampaignJournal::Load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->records().size(), 2u);
  EXPECT_EQ(loaded->records()[1].label, "complete-2");

  // Header-only journals (killed before the first merge) load too.
  std::string empty_path = TempPath("journal_headeronly.xml");
  CampaignJournal header_only;
  ASSERT_TRUE(header_only.Create(empty_path, {{"command", "explore"}}));
  auto empty = CampaignJournal::Load(empty_path, &error);
  ASSERT_TRUE(empty.has_value()) << error;
  EXPECT_TRUE(empty->records().empty());
}

// A meta-less header is a self-closing element; a kill during the first
// record used to defeat the torn-tail scan (the backwards "/>" search
// latched onto a self-closing element inside the torn record and kept the
// garbage). An empty shard journal killed mid-append is exactly this shape.
TEST(CampaignJournal, TornTailAfterSelfClosingHeaderIsDropped) {
  std::string path = TempPath("journal_metaless_torn.xml");
  CampaignJournal journal;
  ASSERT_TRUE(journal.Create(path, {}, nullptr, JournalFormat::kXml));
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "<record label=\"torn\" seed=\"0x1\">\n  <scenario>\n    <trigger id=\"x\" />\n";
  }
  std::string error;
  auto loaded = CampaignJournal::Load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->records().empty());
}

// shards > records: the empty shard still streams (zero jobs) and a
// journaled engine run over it still writes a valid header-only journal
// that loads and reopens downstream.
TEST(JournalSource, EmptyShardYieldsAValidHeaderOnlyJournal) {
  EnsureStockTriggersRegistered();
  Rng rng(12);
  std::string path = TempPath("journal_empty_shard_src.xml");
  CampaignJournal journal;
  ASSERT_TRUE(journal.Create(path, {{"command", "explore"}, {"system", "git"}}));
  ASSERT_TRUE(journal.Append(MakeRecord(rng, "only-record")));
  std::string error;
  ASSERT_TRUE(journal.Finalize(&error)) << error;
  auto loaded = CampaignJournal::Load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  JournalSource::Options options;
  options.shard_index = 3;
  options.shard_count = 8;  // > 1 record: this shard is empty
  JournalSource source(*loaded, options);
  EXPECT_EQ(source.size(), 0u);

  std::string shard_path = TempPath("journal_empty_shard_out.xml");
  std::remove(shard_path.c_str());
  CampaignEngine::Options engine_options;
  engine_options.journal_path = shard_path;
  engine_options.journal_meta = {{"command", "explore"}, {"system", "git"},
                                 {"shard", "3"},         {"shards", "8"}};
  CampaignEngine engine(engine_options);
  ExplorationResult result =
      engine.Run(source, [](const CampaignJob&) { return JobResult{}; });
  EXPECT_EQ(result.scenarios_run, 0u);

  auto shard_journal = CampaignJournal::Load(shard_path, &error);
  ASSERT_TRUE(shard_journal.has_value()) << error;
  EXPECT_TRUE(shard_journal->records().empty());
  EXPECT_EQ(shard_journal->Meta("shard"), "3");
  // And the empty artifact merges (alone or with siblings) without fuss.
  std::string merged_path = TempPath("journal_empty_shard_merged.xml");
  std::remove(merged_path.c_str());
  auto merged = MergeJournals({shard_path, path}, merged_path, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  auto merged_journal = CampaignJournal::Load(merged_path, &error);
  ASSERT_TRUE(merged_journal.has_value()) << error;
  EXPECT_EQ(merged_journal->records().size(), 1u);
}

// --- kill-and-resume determinism (the acceptance bar) ----------------------

// Runs the coverage-guided pbft exploration journaled, simulates a kill
// after `keep` merged records by rewriting the journal to that prefix, then
// resumes at several worker counts: the final bug list and coverage must be
// bit-identical to the uninterrupted run, and the resumed journal must have
// re-grown to the full record count.
TEST(CampaignJournal, KillAndResumeIsBitIdenticalAtAnyWorkerCount) {
  EnsureStockTriggersRegistered();
  std::string full_path = TempPath("journal_full.xml");
  std::remove(full_path.c_str());

  ExploreConfig config;
  config.strategy = ExploreStrategy::kCoverage;
  config.budget = 12;
  config.seed = 3;
  config.workers = 1;
  config.journal_path = full_path;
  ExplorationResult uninterrupted = ExplorePbftCampaign(config);
  ASSERT_FALSE(uninterrupted.bugs.empty());

  std::string error;
  auto full = CampaignJournal::Load(full_path, &error);
  ASSERT_TRUE(full.has_value()) << error;
  ASSERT_EQ(full->records().size(), 12u);

  for (int workers : {1, 2, 8}) {
    for (size_t keep : {size_t{0}, size_t{5}, size_t{11}}) {
      // The kill artifact: the first `keep` records, plus a torn tail.
      std::string partial_path =
          TempPath(StrFormat("journal_partial_%d_%zu.xml", workers, keep).c_str());
      {
        // Scoped: the journal must be closed (extent mode: sealed) before the
        // torn tail is appended and the resume below rewrites the file.
        CampaignJournal partial;
        ASSERT_TRUE(partial.Create(partial_path, full->metadata(), &error)) << error;
        for (size_t i = 0; i < keep; ++i) {
          ASSERT_TRUE(partial.Append(full->records()[i]));
        }
        ASSERT_TRUE(partial.Finalize(&error)) << error;
      }
      {
        std::ofstream out(partial_path, std::ios::app | std::ios::binary);
        out << "<record label=\"torn";
      }

      ExploreConfig resume_config = config;
      resume_config.workers = workers;
      resume_config.journal_path = partial_path;
      resume_config.resume = true;
      ExplorationResult resumed = ExplorePbftCampaign(resume_config);

      ExpectSameBugs(uninterrupted.bugs, resumed.bugs);
      EXPECT_EQ(uninterrupted.coverage.hits(), resumed.coverage.hits());
      EXPECT_EQ(uninterrupted.scenarios_run, resumed.scenarios_run);

      auto regrown = CampaignJournal::Load(partial_path, &error);
      ASSERT_TRUE(regrown.has_value()) << error;
      EXPECT_EQ(regrown->records().size(), 12u);
    }
  }
}

// The ResumeCampaign entry point reconstructs the whole configuration from
// the journal header alone (what `lfi_tool resume` runs).
TEST(CampaignJournal, ResumeCampaignReadsConfigFromHeader) {
  EnsureStockTriggersRegistered();
  std::string path = TempPath("journal_header_resume.xml");
  std::remove(path.c_str());

  ExploreConfig config;
  config.strategy = ExploreStrategy::kCoverage;
  config.budget = 12;
  config.seed = 3;
  config.journal_path = path;
  ExplorationResult uninterrupted = ExplorePbftCampaign(config);

  std::string error;
  auto resumed = ResumeCampaign(path, /*workers=*/2, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  ExpectSameBugs(uninterrupted.bugs, resumed->bugs);
  EXPECT_EQ(uninterrupted.coverage.hits(), resumed->coverage.hits());
}

// Resuming a journal recorded under a different campaign identity must be
// refused, not silently diverge.
TEST(CampaignJournal, ResumeRejectsMismatchedCampaignIdentity) {
  EnsureStockTriggersRegistered();
  std::string path = TempPath("journal_mismatch.xml");
  std::remove(path.c_str());

  ExploreConfig config;
  config.strategy = ExploreStrategy::kCoverage;
  config.budget = 8;
  config.seed = 3;
  config.journal_path = path;
  ExplorePbftCampaign(config);

  ExploreConfig different = config;
  different.seed = 4;
  different.resume = true;
  EXPECT_THROW(ExplorePbftCampaign(different), std::runtime_error);
}

// The batch-API/campaign path (RunOrdered) journals and resumes too.
TEST(CampaignJournal, GitCampaignJournalsAndResumes) {
  EnsureStockTriggersRegistered();
  std::string path = TempPath("journal_git_campaign.xml");
  std::remove(path.c_str());

  CampaignConfig config;
  config.journal_path = path;
  std::vector<FoundBug> uninterrupted = RunGitCampaign(config);
  ASSERT_FALSE(uninterrupted.empty());

  std::string error;
  auto full = CampaignJournal::Load(path, &error);
  ASSERT_TRUE(full.has_value()) << error;
  ASSERT_GT(full->records().size(), 4u);

  // Kill artifact: keep a 3-record prefix, then resume through the header.
  std::string partial_path = TempPath("journal_git_partial.xml");
  CampaignJournal partial;
  ASSERT_TRUE(partial.Create(partial_path, full->metadata(), &error)) << error;
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(partial.Append(full->records()[i]));
  }
  auto resumed = ResumeCampaign(partial_path, /*workers=*/2, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  ExpectSameBugs(uninterrupted, resumed->bugs);
}

// --- disk-only replay -------------------------------------------------------

// Every journaled record that exposed a bug must reproduce its crash site
// from the journal alone: fresh process state, scenario rebuilt with the
// stock call-count trigger from the serialized injection log.
TEST(CampaignJournal, ReplayReproducesEveryJournaledCrashSiteFromDisk) {
  EnsureStockTriggersRegistered();
  std::string path = TempPath("journal_replay.xml");
  std::remove(path.c_str());

  ExploreConfig config;
  config.strategy = ExploreStrategy::kCoverage;
  config.budget = 12;
  config.seed = 3;
  config.journal_path = path;
  ExplorationResult result = ExplorePbftCampaign(config);
  ASSERT_FALSE(result.bugs.empty());

  std::string error;
  auto journal = CampaignJournal::Load(path, &error);
  ASSERT_TRUE(journal.has_value()) << error;
  CampaignEngine::ResultRunner runner = SystemJobRunner(journal->Meta("system"));
  ASSERT_TRUE(runner != nullptr);

  size_t bug_records = 0;
  for (const JournalRecord& record : journal->records()) {
    if (record.result.bugs.empty()) {
      continue;
    }
    ASSERT_FALSE(record.result.log.empty()) << record.label;
    ++bug_records;
    CampaignJob job;
    job.scenario = record.result.log.ReplayScenario(record.result.log.size() - 1);
    job.label = "replay " + record.label;
    job.seed = record.seed;
    JobResult replayed = runner(job);
    ASSERT_FALSE(replayed.bugs.empty()) << record.label;
    bool reproduced = false;
    for (const FoundBug& want : record.result.bugs) {
      for (const FoundBug& got : replayed.bugs) {
        reproduced |= want.system == got.system && want.kind == got.kind &&
                      want.where == got.where;
      }
    }
    EXPECT_TRUE(reproduced) << record.label;
  }
  EXPECT_GT(bug_records, 0u);
}

// --- JournalSource: seeding and sharding ------------------------------------

TEST(JournalSource, ReseedsACampaignAndShardsItLosslessly) {
  EnsureStockTriggersRegistered();
  std::string path = TempPath("journal_source.xml");
  std::remove(path.c_str());

  ExploreConfig config;
  config.strategy = ExploreStrategy::kCoverage;
  config.budget = 12;
  config.seed = 3;
  config.journal_path = path;
  ExplorationResult original = ExplorePbftCampaign(config);

  std::string error;
  auto journal = CampaignJournal::Load(path, &error);
  ASSERT_TRUE(journal.has_value()) << error;
  CampaignEngine::ResultRunner runner = SystemJobRunner("pbft");

  // Re-running the journaled scenarios through the same harness reproduces
  // the original campaign's results.
  JournalSource reseed(*journal);
  EXPECT_EQ(reseed.size(), 12u);
  CampaignEngine engine;
  ExplorationResult rerun = engine.Run(reseed, runner);
  ExpectSameBugs(original.bugs, rerun.bugs);
  EXPECT_EQ(original.coverage.hits(), rerun.coverage.hits());

  // Sharding: two half-streams whose union covers exactly the recorded
  // scenario sequence and finds the same crash sites.
  std::set<std::tuple<std::string, std::string, std::string>> full_sites;
  for (const FoundBug& bug : original.bugs) {
    full_sites.insert({bug.system, bug.kind, bug.where});
  }
  std::set<std::tuple<std::string, std::string, std::string>> shard_sites;
  size_t shard_jobs = 0;
  for (size_t shard = 0; shard < 2; ++shard) {
    JournalSource::Options options;
    options.shard_index = shard;
    options.shard_count = 2;
    JournalSource source(*journal, options);
    shard_jobs += source.size();
    ExplorationResult result = engine.Run(source, runner);
    for (const FoundBug& bug : result.bugs) {
      shard_sites.insert({bug.system, bug.kind, bug.where});
    }
  }
  EXPECT_EQ(shard_jobs, 12u);
  EXPECT_EQ(shard_sites, full_sites);

  EXPECT_THROW(JournalSource(*journal, JournalSource::Options{2, 2, false}),
               std::invalid_argument);
}

// --- the doctor's campaign-identity surface ---------------------------------

// `lfi_tool journal doctor` flags a campaign identity that names a system
// this build cannot re-run. The decision surface it consults lives here in
// the library: a bfs identity must round-trip through a journal header into
// a valid spec and resolve a job runner, while an unknown system must fail
// all three -- the doctor's unknown-system issue and resume/replay's refusal
// key off exactly these checks.
TEST(CampaignJournal, DoctorIdentitySurfaceRecognizesBfsAndRefusesUnknown) {
  CampaignSpec spec;
  spec.system = "bfs";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kCoverage;
  spec.budget = 16;
  spec.seed = 9;
  spec.journal_path = TempPath("journal_bfs_identity.xml");
  EXPECT_EQ(spec.Validate(), "");

  std::remove(spec.journal_path.c_str());
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Create(spec.journal_path, spec.ToJournalMeta(), &error)) << error;
  ASSERT_TRUE(journal.Finalize(&error)) << error;
  auto loaded = CampaignJournal::Load(spec.journal_path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->Meta("system"), "bfs");
  auto parsed = CampaignSpec::FromJournalMeta(loaded->metadata(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->system, "bfs");
  EXPECT_EQ(parsed->Validate(), "");
  EXPECT_TRUE(IsCampaignSystem("bfs"));
  EXPECT_TRUE(SystemJobRunner("bfs") != nullptr);

  // An identity naming a system this build does not know: not a member, no
  // runner, and a spec parsed from it does not validate as runnable.
  EXPECT_FALSE(IsCampaignSystem("zfs"));
  EXPECT_TRUE(SystemJobRunner("zfs") == nullptr);
  JournalMetadata unknown = spec.ToJournalMeta();
  for (auto& [key, value] : unknown) {
    if (key == "system") {
      value = "zfs";
    }
  }
  auto refused = CampaignSpec::FromJournalMeta(unknown, &error);
  EXPECT_TRUE(!refused.has_value() || !refused->Validate().empty());
}

}  // namespace
}  // namespace lfi
