#include <gtest/gtest.h>

#include "image/assembler.h"
#include "image/image.h"
#include "isa/isa.h"

namespace lfi {
namespace {

TEST(IsaEncoding, RoundTripSimple) {
  Instruction in;
  in.op = Op::kMovRI;
  in.rd = 3;
  in.imm = -12345;
  std::vector<uint8_t> bytes;
  EncodeInstruction(in, &bytes);
  ASSERT_EQ(bytes.size(), kInstrSize);
  Instruction out;
  ASSERT_TRUE(DecodeInstruction(bytes, 0, &out));
  EXPECT_EQ(out.op, Op::kMovRI);
  EXPECT_EQ(out.rd, 3);
  EXPECT_EQ(out.imm, -12345);
}

class IsaOpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IsaOpRoundTrip, EncodeDecode) {
  Instruction in;
  in.op = static_cast<Op>(GetParam());
  in.rd = 5;
  in.rs = 9;
  in.flags = in.op == Op::kCall ? kCallImport : 0;
  in.imm = 0x7f00ee11;
  std::vector<uint8_t> bytes;
  EncodeInstruction(in, &bytes);
  Instruction out;
  ASSERT_TRUE(DecodeInstruction(bytes, 0, &out));
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.rd, in.rd);
  EXPECT_EQ(out.rs, in.rs);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.imm, in.imm);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, IsaOpRoundTrip,
                         ::testing::Range(0, static_cast<int>(Op::kOpCount)));

TEST(IsaDecoding, RejectsBadOpcode) {
  std::vector<uint8_t> bytes(kInstrSize, 0);
  bytes[0] = static_cast<uint8_t>(Op::kOpCount);
  Instruction out;
  EXPECT_FALSE(DecodeInstruction(bytes, 0, &out));
}

TEST(IsaDecoding, RejectsBadRegister) {
  Instruction in;
  in.op = Op::kMovRR;
  std::vector<uint8_t> bytes;
  EncodeInstruction(in, &bytes);
  bytes[1] = 16;  // register out of range
  Instruction out;
  EXPECT_FALSE(DecodeInstruction(bytes, 0, &out));
}

TEST(IsaDecoding, RejectsMisalignedAndShort) {
  std::vector<uint8_t> bytes(kInstrSize * 2, 0);
  Instruction out;
  EXPECT_FALSE(DecodeInstruction(bytes, 3, &out));
  EXPECT_FALSE(DecodeInstruction(bytes, kInstrSize * 2, &out));
}

TEST(IsaFormat, Mnemonics) {
  Instruction i;
  i.op = Op::kCmpRI;
  i.rd = 0;
  i.imm = -1;
  EXPECT_EQ(FormatInstruction(i), "cmpi r0, -1");
  i.op = Op::kLoad;
  i.rd = 2;
  i.rs = 13;
  i.imm = 8;
  EXPECT_EQ(FormatInstruction(i), "load r2, [r13+8]");
}

TEST(Assembler, MinimalFunction) {
  auto image = Assemble(R"(
module demo
func main
  movi r0, 42
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->module_name(), "demo");
  ASSERT_EQ(image->symbols().size(), 1u);
  EXPECT_EQ(image->symbols()[0].name, "main");
  EXPECT_EQ(image->instruction_count(), 2u);
}

TEST(Assembler, LabelsAndBranches) {
  auto image = Assemble(R"(
module demo
func f
  cmpi r0, -1
  je .err
  movi r1, 0
  ret
.err:
  movi r1, 1
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  Instruction instr;
  ASSERT_TRUE(image->Decode(1 * kInstrSize, &instr));
  EXPECT_EQ(instr.op, Op::kJe);
  EXPECT_EQ(instr.imm, 4 * static_cast<int>(kInstrSize));  // .err label
}

TEST(Assembler, LocalCallAndImport) {
  auto image = Assemble(R"(
module demo
func helper
  ret
end
func main
  call helper
  call read
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->ImportIndex("read"), 0);
  EXPECT_EQ(image->ImportIndex("helper"), -1);
  Instruction instr;
  ASSERT_TRUE(image->Decode(1 * kInstrSize, &instr));  // call helper
  EXPECT_EQ(instr.op, Op::kCall);
  EXPECT_EQ(instr.flags, kCallLocal);
  EXPECT_EQ(instr.imm, 0);
  ASSERT_TRUE(image->Decode(2 * kInstrSize, &instr));  // call read
  EXPECT_EQ(instr.flags, kCallImport);
}

TEST(Assembler, ForwardCallResolvesLocal) {
  auto image = Assemble(R"(
module demo
func main
  call later
  ret
end
func later
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  Instruction instr;
  ASSERT_TRUE(image->Decode(0, &instr));
  EXPECT_EQ(instr.flags, kCallLocal);
  EXPECT_EQ(instr.imm, 2 * static_cast<int>(kInstrSize));
  EXPECT_TRUE(image->imports().empty());
}

TEST(Assembler, MemoryOperands) {
  auto image = Assemble(R"(
module demo
func f
  store [sp+16], r0
  load r1, [sp+16]
  store [sp-8], r2
  load r3, [r7]
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  Instruction instr;
  ASSERT_TRUE(image->Decode(0, &instr));
  EXPECT_EQ(instr.op, Op::kStore);
  EXPECT_EQ(instr.rd, kSpReg);
  EXPECT_EQ(instr.imm, 16);
  ASSERT_TRUE(image->Decode(2 * kInstrSize, &instr));
  EXPECT_EQ(instr.imm, -8);
  ASSERT_TRUE(image->Decode(3 * kInstrSize, &instr));
  EXPECT_EQ(instr.rs, 7);
  EXPECT_EQ(instr.imm, 0);
}

TEST(Assembler, RegisterAliases) {
  auto image = Assemble(R"(
module demo
func f
  mov rv, r3
  store [err+0], r1
  mov r2, sp
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  Instruction instr;
  ASSERT_TRUE(image->Decode(0, &instr));
  EXPECT_EQ(instr.rd, kRetReg);
  ASSERT_TRUE(image->Decode(kInstrSize, &instr));
  EXPECT_EQ(instr.rd, kErrnoReg);
}

TEST(Assembler, CommentsIgnored) {
  auto image = Assemble(R"(
module demo  ; trailing comment
# full-line comment
func f
  ret  # done
end
)");
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->instruction_count(), 1u);
}

struct AsmErrorCase {
  const char* name;
  const char* source;
};

class AssemblerErrors : public ::testing::TestWithParam<AsmErrorCase> {};

TEST_P(AssemblerErrors, Rejects) {
  AsmError error;
  auto image = Assemble(GetParam().source, &error);
  EXPECT_FALSE(image.has_value());
  EXPECT_FALSE(error.message.empty());
  EXPECT_GT(error.line, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        AsmErrorCase{"UndefinedLabel", "module m\nfunc f\n  jmp .nowhere\n  ret\nend\n"},
        AsmErrorCase{"DuplicateLabel", "module m\nfunc f\n.l:\n.l:\n  ret\nend\n"},
        AsmErrorCase{"MissingEnd", "module m\nfunc f\n  ret\n"},
        AsmErrorCase{"NestedFunc", "module m\nfunc f\nfunc g\n  ret\nend\nend\n"},
        AsmErrorCase{"InstrOutsideFunc", "module m\n  ret\n"},
        AsmErrorCase{"BadRegister", "module m\nfunc f\n  mov r99, r0\n  ret\nend\n"},
        AsmErrorCase{"BadMnemonic", "module m\nfunc f\n  frobnicate r1\n  ret\nend\n"},
        AsmErrorCase{"BadOperandCount", "module m\nfunc f\n  mov r1\n  ret\nend\n"},
        AsmErrorCase{"EmptyFunction", "module m\nfunc f\nend\n"},
        AsmErrorCase{"DuplicateFunction",
                     "module m\nfunc f\n  ret\nend\nfunc f\n  ret\nend\n"},
        AsmErrorCase{"JumpToBareName", "module m\nfunc f\n  jmp somewhere\n  ret\nend\n"}),
    [](const ::testing::TestParamInfo<AsmErrorCase>& info) { return info.param.name; });

TEST(Image, SerializeDeserializeRoundTrip) {
  auto image = Assemble(R"(
module roundtrip
func a
  call read
  cmpi r0, -1
  je .e
  ret
.e:
  movi r0, 0
  ret
end
func b
  call a
  call write
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  auto bytes = image->Serialize();
  auto restored = Image::Deserialize(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->module_name(), "roundtrip");
  EXPECT_EQ(restored->text(), image->text());
  ASSERT_EQ(restored->symbols().size(), 2u);
  EXPECT_EQ(restored->symbols()[1].name, "b");
  EXPECT_EQ(restored->imports(), image->imports());
}

TEST(Image, DeserializeRejectsCorruption) {
  auto image = Assemble("module m\nfunc f\n  ret\nend\n");
  ASSERT_TRUE(image.has_value());
  auto bytes = image->Serialize();
  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(Image::Deserialize(bad).has_value());
  // Truncated.
  bad = bytes;
  bad.resize(bad.size() - 1);
  EXPECT_FALSE(Image::Deserialize(bad).has_value());
  // Trailing garbage.
  bad = bytes;
  bad.push_back(0);
  EXPECT_FALSE(Image::Deserialize(bad).has_value());
}

TEST(Image, SymbolContaining) {
  auto image = Assemble(R"(
module m
func first
  nop
  ret
end
func second
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->SymbolContaining(0)->name, "first");
  EXPECT_EQ(image->SymbolContaining(kInstrSize)->name, "first");
  EXPECT_EQ(image->SymbolContaining(2 * kInstrSize)->name, "second");
  EXPECT_EQ(image->SymbolContaining(999 * kInstrSize), nullptr);
}

TEST(Image, DisassembleResolvesNames) {
  auto image = Assemble(R"(
module m
func f
  call read
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  std::string listing = image->Disassemble();
  EXPECT_NE(listing.find("call read@plt"), std::string::npos);
  EXPECT_NE(listing.find("f:"), std::string::npos);
}

}  // namespace
}  // namespace lfi
