// Fault-tolerant campaign orchestration (docs/architecture.md, "Fault
// tolerance & supervision"): the deterministic failpoint registry, the
// ShardSupervisor's deadline/retry/backoff policy, the engine's per-job hang
// detection, and the chaos acceptance bar -- a distributed campaign whose
// children are crashed, hung, or impossible to spawn at any point in the
// schedule still converges to a merged journal byte-identical to the
// unfailed run.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "apps/common/shard_supervisor.h"
#include "core/campaign_engine.h"
#include "core/exploration.h"
#include "core/journal.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace lfi {
namespace {

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// The failpoint registry is a process-global; every test that arms it (or
// runs a spec that does) restores the disarmed, unscoped state -- Clear also
// releases any thread a hang action left parked.
struct FailpointGuard {
  ~FailpointGuard() {
    Failpoints::Instance().Clear();
    Failpoints::Instance().SetScope("");
  }
};

// Clears the merged journal plus every artifact a supervised run may leave:
// per-shard and per-epoch journals, frontier snapshots, child spec files,
// and tmp files from interrupted atomic writes.
void RemoveArtifacts(const std::string& journal, size_t shards) {
  std::remove(journal.c_str());
  std::remove((journal + ".tmp").c_str());
  for (size_t shard = 0; shard < shards; ++shard) {
    std::remove((journal + StrFormat(".shard%zu", shard)).c_str());
    std::remove((journal + StrFormat(".shard%zu.spec", shard)).c_str());
  }
  for (size_t epoch = 0; epoch < 8; ++epoch) {
    std::remove((journal + StrFormat(".epoch%zu.frontier", epoch)).c_str());
    std::remove((journal + StrFormat(".epoch%zu.frontier.tmp", epoch)).c_str());
    for (size_t shard = 0; shard < shards; ++shard) {
      std::remove((journal + StrFormat(".epoch%zu.shard%zu", epoch, shard)).c_str());
      std::remove((journal + StrFormat(".epoch%zu.shard%zu.spec", epoch, shard)).c_str());
    }
  }
}

// The canonical chaos-test campaign: pbft, coverage strategy, a budget that
// spans several epochs at epoch_len 2 -- the same schedule the epoch
// equivalence tests pin, so "byte-identical to the unfailed run" is a
// meaningful bar. Backoff is shortened: the schedules below crash a child
// once per run and the retried attempt succeeds immediately.
CampaignSpec ChaosSpec(const std::string& journal, size_t shards) {
  CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kCoverage;
  spec.budget = 32;
  spec.seed = 7;
  spec.workers = 1;
  spec.epoch_len = 2;
  spec.journal_path = journal;
  spec.shard_count = shards;
  spec.backoff_ms = 10;
  return spec;
}

std::optional<CampaignOutcome> RunDriver(CampaignSpec spec, std::string* error) {
  CampaignDriver driver(std::move(spec));
  return driver.Run(error);
}

// The unfailed run's merged journal bytes: every chaos schedule below must
// converge to exactly these.
const std::string& GoldenBytes() {
  static const std::string* bytes = [] {
    std::string path = TempPath("supervisor_golden.lfij");
    RemoveArtifacts(path, 4);
    std::string error;
    auto outcome = RunDriver(ChaosSpec(path, 1), &error);
    EXPECT_TRUE(outcome.has_value()) << error;
    return new std::string(ReadFile(path));
  }();
  return *bytes;
}

// --- the failpoint registry -------------------------------------------------

TEST(Failpoints, RejectsMalformedSpecs) {
  FailpointGuard guard;
  Failpoints& fp = Failpoints::Instance();
  std::string error;
  EXPECT_FALSE(fp.Arm("nonsense", &error));
  EXPECT_NE(error.find("missing its =action"), std::string::npos) << error;
  EXPECT_FALSE(fp.Arm("x=explode", &error));
  EXPECT_NE(error.find("unknown action"), std::string::npos) << error;
  EXPECT_FALSE(fp.Arm("x=error@0", &error));
  EXPECT_NE(error.find("bad @hit count"), std::string::npos) << error;
  EXPECT_FALSE(fp.Arm("=error", &error));
  EXPECT_NE(error.find("empty name"), std::string::npos) << error;
  EXPECT_FALSE(fp.armed());  // a failed Arm arms nothing
}

TEST(Failpoints, HitCountsScopesAndOneShotSemantics) {
  FailpointGuard guard;
  Failpoints& fp = Failpoints::Instance();
  std::string error;
  ASSERT_TRUE(fp.Arm("a=error@2,shard1:b=error", &error)) << error;
  fp.SetScope("shard0");
  EXPECT_FALSE(fp.Fire("b"));  // wrong scope
  EXPECT_FALSE(fp.Fire("a"));  // hit 1 of 2
  EXPECT_TRUE(fp.Fire("a"));   // hit 2: fires
  EXPECT_FALSE(fp.Fire("a"));  // one-shot: spent
  fp.SetScope("shard1");
  EXPECT_TRUE(fp.Fire("b"));  // scoped entry matches its scope
  EXPECT_FALSE(fp.Fire("b"));
  // Re-arming replaces the whole set (fork-child idempotence) and resets
  // hit counters.
  ASSERT_TRUE(fp.Arm("a=error@2", &error)) << error;
  EXPECT_FALSE(fp.Fire("a"));
  EXPECT_TRUE(fp.Fire("a"));
  fp.Clear();
  EXPECT_FALSE(fp.armed());
  EXPECT_FALSE(fp.Fire("a"));
}

// --- the supervisor's policy, driven directly -------------------------------

TEST(ShardSupervisor, CleanChildrenRunOnce) {
  ShardSupervisor::Options options;
  options.backoff_ms = 1;
  ShardSupervisor supervisor(options,
                             [](const CampaignSpec&, std::string*) { return true; });
  std::vector<CampaignSpec> children(2);
  children[0].journal_path = TempPath("supervisor_clean0.lfij");
  children[1].journal_path = TempPath("supervisor_clean1.lfij");
  std::string error;
  std::vector<ShardSupervisor::Report> reports;
  ASSERT_TRUE(supervisor.Run(children, &error, &reports)) << error;
  ASSERT_EQ(reports.size(), 2u);
  for (const ShardSupervisor::Report& report : reports) {
    EXPECT_EQ(report.attempts, 1u);
    EXPECT_EQ(report.last_exit, ChildExit::kClean);
  }
}

TEST(ShardSupervisor, RetriesExhaustThenFailLoudly) {
  ShardSupervisor::Options options;
  options.max_retries = 1;
  options.backoff_ms = 1;
  ShardSupervisor supervisor(options, [](const CampaignSpec&, std::string* err) {
    if (err != nullptr) {
      *err = "deterministic child failure";
    }
    return false;
  });
  std::vector<CampaignSpec> children(1);
  children[0].journal_path = TempPath("supervisor_fails.lfij");
  std::string error;
  std::vector<ShardSupervisor::Report> reports;
  EXPECT_FALSE(supervisor.Run(children, &error, &reports));
  EXPECT_NE(error.find("shard 0 failed after 2 attempt(s)"), std::string::npos) << error;
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].attempts, 2u);
}

#if defined(__unix__) || defined(__APPLE__)

TEST(ShardSupervisor, DeadlineKillsHungChild) {
  ShardSupervisor::Options options;
  options.child_timeout_ms = 200;
  options.max_retries = 0;
  options.backoff_ms = 1;
  ShardSupervisor supervisor(options, [](const CampaignSpec&, std::string*) {
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return true;
  });
  std::vector<CampaignSpec> children(1);
  children[0].journal_path = TempPath("supervisor_hung.lfij");
  std::string error;
  std::vector<ShardSupervisor::Report> reports;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(supervisor.Run(children, &error, &reports));
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(20)) << "deadline did not kill the child";
  EXPECT_NE(error.find("timed-out"), std::string::npos) << error;
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].last_exit, ChildExit::kTimedOut);
}

// --- the chaos acceptance bar -----------------------------------------------
//
// Every schedule below injects a failure into a distributed run of the same
// campaign and requires the merged journal to come out byte-identical to the
// unfailed single-process run.

TEST(ChaosRecovery, ChildCrashAtEachEpochStartRecoversByteIdentical) {
  const std::string& golden = GoldenBytes();
  ASSERT_FALSE(golden.empty());
  std::string error;
  for (size_t epoch = 0; epoch < 3; ++epoch) {
    FailpointGuard guard;
    std::string path =
        TempPath(StrFormat("supervisor_crash_e%zu.lfij", epoch).c_str());
    RemoveArtifacts(path, 2);
    CampaignSpec spec = ChaosSpec(path, 2);
    // Kill shard 1's child with a bare _Exit the moment it starts epoch
    // `epoch`; the supervisor retries it with failpoints stripped.
    spec.failpoints = StrFormat("epoch%zu.shard1:child.start=exit:9", epoch);
    auto outcome = RunDriver(spec, &error);
    ASSERT_TRUE(outcome.has_value()) << error << " epoch=" << epoch;
    EXPECT_EQ(ReadFile(path), golden) << "epoch=" << epoch;
  }
}

TEST(ChaosRecovery, ChildCrashMidEpochSalvagesSealedPrefix) {
  const std::string& golden = GoldenBytes();
  FailpointGuard guard;
  std::string path = TempPath("supervisor_crash_mid.lfij");
  RemoveArtifacts(path, 2);
  CampaignSpec spec = ChaosSpec(path, 2);
  // _Exit before the child's first journal append of epoch 1: the respawned
  // attempt finds the torn shard journal on disk and resumes it.
  spec.failpoints = "epoch1.shard0:engine.record=exit:9@1";
  std::string error;
  auto outcome = RunDriver(spec, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_EQ(ReadFile(path), golden);
}

TEST(ChaosRecovery, HungChildIsKilledAtDeadlineAndRespawned) {
  const std::string& golden = GoldenBytes();
  FailpointGuard guard;
  std::string path = TempPath("supervisor_hang_child.lfij");
  RemoveArtifacts(path, 2);
  CampaignSpec spec = ChaosSpec(path, 2);
  spec.failpoints = "epoch0.shard0:child.start=hang";
  // Generous enough that a healthy (even sanitizer-instrumented) respawn
  // finishes its epoch inside the deadline; only the parked attempt dies.
  spec.child_timeout_ms = 8000;
  std::string error;
  auto outcome = RunDriver(spec, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_EQ(ReadFile(path), golden);
}

TEST(ChaosRecovery, RetryExhaustionFailsLoudlyAndResumeSalvagesTheRun) {
  const std::string& golden = GoldenBytes();
  std::string path = TempPath("supervisor_exhaust.lfij");
  std::string error;
  {
    FailpointGuard guard;
    RemoveArtifacts(path, 2);
    CampaignSpec spec = ChaosSpec(path, 2);
    spec.max_retries = 0;  // the crash schedule may not be retried away
    spec.failpoints = "epoch0.shard1:child.start=exit:7";
    auto outcome = RunDriver(spec, &error);
    ASSERT_FALSE(outcome.has_value());
    EXPECT_NE(error.find("shard 1 failed after 1 attempt(s)"), std::string::npos) << error;
    EXPECT_NE(error.find("status 7"), std::string::npos) << error;
  }
  // A clean resume (fresh supervision policy, no failpoints) completes the
  // campaign from the surviving artifacts, byte-identically.
  FailpointGuard guard;
  CampaignSpec resume;
  resume.mode = CampaignMode::kResume;
  resume.journal_path = path;
  resume.shard_count = 2;
  auto resumed = RunDriver(resume, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  EXPECT_EQ(ReadFile(path), golden);
}

TEST(ChaosRecovery, ForkFailureFallsBackToInProcessExecution) {
  const std::string& golden = GoldenBytes();
  // Total failure (no child ever spawns) and partial failure (one child is
  // up and must be killed and re-run in-process) both converge.
  for (const char* schedule : {"supervisor.fork=error", "supervisor.fork=error@2"}) {
    FailpointGuard guard;
    std::string path = TempPath("supervisor_forkfail.lfij");
    RemoveArtifacts(path, 2);
    CampaignSpec spec = ChaosSpec(path, 2);
    spec.failpoints = schedule;
    std::string error;
    auto outcome = RunDriver(spec, &error);
    ASSERT_TRUE(outcome.has_value()) << error << " schedule=" << schedule;
    EXPECT_EQ(ReadFile(path), golden) << "schedule=" << schedule;
  }
}

#endif  // defined(__unix__) || defined(__APPLE__)

// --- crash-atomic merge finalization ----------------------------------------

TEST(ChaosRecovery, MergeCrashBeforeRenameLeavesNoTornOutput) {
  FailpointGuard guard;
  // Two dealt shards of one random-strategy campaign, run in-process.
  std::string base = TempPath("supervisor_merge_in.lfij");
  std::vector<std::string> inputs;
  std::string error;
  for (size_t shard = 0; shard < 2; ++shard) {
    CampaignSpec spec;
    spec.system = "pbft";
    spec.mode = CampaignMode::kExplore;
    spec.strategy = ExploreStrategy::kRandom;
    spec.budget = 16;
    spec.seed = 3;
    spec.workers = 1;
    spec.shard_index = shard;
    spec.shard_count = 2;
    spec.journal_path = base + StrFormat(".in%zu", shard);
    std::remove(spec.journal_path.c_str());
    inputs.push_back(spec.journal_path);
    ASSERT_TRUE(RunDriver(spec, &error).has_value()) << error;
  }
  Failpoints::Instance().SetScope("");

  std::string ref_path = TempPath("supervisor_merge_ref.lfij");
  std::remove(ref_path.c_str());
  ASSERT_TRUE(MergeCampaignJournals(inputs, ref_path, &error).has_value()) << error;
  std::string ref_bytes = ReadFile(ref_path);

  // The merge dies between finalizing the tmp file and renaming it: the
  // output path must not exist (a reader never sees a torn merge), and the
  // tmp file is a complete, finalized journal.
  std::string out_path = TempPath("supervisor_merge_out.lfij");
  std::remove(out_path.c_str());
  std::remove((out_path + ".tmp").c_str());
  ASSERT_TRUE(Failpoints::Instance().Arm("merge.rename=error", &error)) << error;
  EXPECT_FALSE(MergeCampaignJournals(inputs, out_path, &error).has_value());
  EXPECT_NE(error.find("merge.rename"), std::string::npos) << error;
  EXPECT_FALSE(std::ifstream(out_path).good());
  auto tmp = CampaignJournal::Load(out_path + ".tmp", &error);
  ASSERT_TRUE(tmp.has_value()) << error;
  EXPECT_TRUE(tmp->sealed());

  // Re-running the merge cleanly converges to the reference bytes.
  Failpoints::Instance().Clear();
  std::remove((out_path + ".tmp").c_str());
  ASSERT_TRUE(MergeCampaignJournals(inputs, out_path, &error).has_value()) << error;
  EXPECT_EQ(ReadFile(out_path), ref_bytes);
}

// --- the engine's per-job hang detection ------------------------------------

TEST(EngineHangDetection, HungJobReportsDeterministicHangBug) {
  FailpointGuard guard;
  std::string path = TempPath("supervisor_engine_hang.lfij");
  std::remove(path.c_str());
  CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kRandom;
  spec.budget = 8;
  spec.seed = 5;
  spec.workers = 1;
  spec.journal_path = path;
  spec.job_timeout_ms = 200;
  spec.failpoints = "engine.job.run=hang@3";
  std::string error;
  auto outcome = RunDriver(spec, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  bool found_hang = false;
  for (const FoundBug& bug : outcome->bugs) {
    if (bug.kind == "hang") {
      found_hang = true;
      EXPECT_EQ(bug.system, "pbft");
      EXPECT_NE(bug.where.find("unresponsive under injected fault"), std::string::npos);
    }
  }
  EXPECT_TRUE(found_hang);
  // Clear releases the parked watchdog thread; the abandoned job is skipped,
  // never executed against torn-down engine state.
  Failpoints::Instance().Clear();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

}  // namespace
}  // namespace lfi
