// Additional runtime/composition/log edge cases: trigger instance sharing,
// parametrization, negation composition laws, distributed-controller
// bookkeeping, and log/replay details.

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/distributed.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "vlib/virtual_libc.h"

namespace lfi {
namespace {

class RuntimeExtraTest : public ::testing::Test {
 protected:
  RuntimeExtraTest() : libc_(&fs_, &net_, "proc") {
    EnsureStockTriggersRegistered();
    fs_.MkDir("/d");
    fs_.WriteFile("/d/f", "0123456789");
  }

  Scenario MustParse(const std::string& xml) {
    std::string error;
    auto s = Scenario::Parse(xml, &error);
    EXPECT_TRUE(s.has_value()) << error;
    return s ? *std::move(s) : Scenario();
  }

  VirtualFs fs_;
  VirtualNet net_;
  VirtualLibc libc_;
};

TEST_F(RuntimeExtraTest, OneInstanceSharedAcrossAssociationsKeepsOneState) {
  // A single singleton instance referenced from two function associations
  // fires exactly once in total, not once per function.
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="once" class="SingletonTrigger"/>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="once"/></function>
  <function name="close" return="-1" errno="EIO"><reftrigger ref="once"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[1];
  EXPECT_EQ(libc_.Read(fd, buf, 1), -1);  // consumed the singleton
  EXPECT_EQ(libc_.Close(fd), 0);          // nothing left for close
  libc_.set_interposer(nullptr);
  EXPECT_EQ(runtime.injections(), 1u);
}

TEST_F(RuntimeExtraTest, TwoInstancesOfSameClassAreIndependent) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="a" class="SingletonTrigger"/>
  <trigger id="b" class="SingletonTrigger"/>
  <function name="read" return="-1" errno="EIO"><reftrigger ref="a"/></function>
  <function name="close" return="-1" errno="EIO"><reftrigger ref="b"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  char buf[1];
  EXPECT_EQ(libc_.Read(fd, buf, 1), -1);
  EXPECT_EQ(libc_.Close(fd), -1);  // b is its own singleton
  libc_.set_interposer(nullptr);
  EXPECT_EQ(runtime.injections(), 2u);
}

TEST_F(RuntimeExtraTest, DoubleNegationIsIdentity) {
  // NOT(NOT(always)) == always: two negated always-false triggers in
  // conjunction vote yes.
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="never1" class="RandomTrigger"><args><probability>0.0</probability></args></trigger>
  <trigger id="never2" class="RandomTrigger"><args><probability>0.0</probability></args></trigger>
  <function name="close" return="-1" errno="EIO">
    <reftrigger ref="never1" negate="true"/>
    <reftrigger ref="never2" negate="true"/>
  </function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd), -1);
  libc_.set_interposer(nullptr);
}

TEST_F(RuntimeExtraTest, InjectionWithoutErrnoLeavesErrnoUntouched) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="always" class="RandomTrigger"><args><probability>1.0</probability></args></trigger>
  <function name="close" return="-1"><reftrigger ref="always"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_verrno(kEPERM);  // sentinel
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd), -1);
  EXPECT_EQ(libc_.verrno(), kEPERM);  // untouched
  libc_.set_interposer(nullptr);
}

TEST_F(RuntimeExtraTest, LogSequenceNumbersAreMonotonic) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="always" class="RandomTrigger"><args><probability>1.0</probability></args></trigger>
  <function name="close" return="-1" errno="EIO"><reftrigger ref="always"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  for (int i = 0; i < 5; ++i) {
    int fd = libc_.Open("/d/f", kORdOnly);
    libc_.Close(fd);
    libc_.set_interposer(nullptr);
    libc_.Close(fd);  // really close it
    libc_.set_interposer(&runtime);
  }
  libc_.set_interposer(nullptr);
  ASSERT_EQ(runtime.log().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(runtime.log().records()[i].sequence, i + 1);
    EXPECT_EQ(runtime.log().records()[i].call_number, i + 1);
  }
}

TEST_F(RuntimeExtraTest, ReplayScenarioOutOfRangeIsEmpty) {
  InjectionLog log;
  Scenario replay = log.ReplayScenario(42);
  EXPECT_TRUE(replay.triggers().empty());
  EXPECT_TRUE(replay.functions().empty());
}

TEST_F(RuntimeExtraTest, ControllerRunsAreIndependent) {
  // Each RunTest builds a fresh runtime: singleton state does not leak
  // between tests, and call counts restart.
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="first" class="CallCountTrigger"><args><count>1</count></args></trigger>
  <function name="close" return="-1" errno="EIO"><reftrigger ref="first"/></function>
</scenario>)");
  TestController controller(s);
  for (int round = 0; round < 3; ++round) {
    TestOutcome outcome = controller.RunTest(&libc_, [&] {
      int fd = libc_.Open("/d/f", kORdOnly);
      bool injected = libc_.Close(fd) == -1;
      return injected;  // "success" means we saw the injection
    });
    EXPECT_EQ(outcome.status, ExitStatus::kNormal) << "round " << round;
    EXPECT_EQ(outcome.injections, 1u) << "round " << round;
  }
}

TEST_F(RuntimeExtraTest, DistributedControllersCountConsultations) {
  RandomLossController random_controller(0.5, 7);
  BlackoutController blackout("nodeX");
  ArgVec args;
  for (int i = 0; i < 10; ++i) {
    random_controller.ShouldInject("n", "sendto", args);
    blackout.ShouldInject("n", "sendto", args);
  }
  EXPECT_EQ(random_controller.consultations(), 10u);
  EXPECT_EQ(blackout.consultations(), 10u);
}

TEST_F(RuntimeExtraTest, RotatingBlackoutIgnoresUnknownNodes) {
  RotatingBlackoutController controller({"a", "b"}, 2);
  ArgVec args;
  EXPECT_FALSE(controller.ShouldInject("stranger", "sendto", args));
  EXPECT_TRUE(controller.ShouldInject("a", "sendto", args));
  EXPECT_TRUE(controller.ShouldInject("a", "sendto", args));  // burst of 2 done
  EXPECT_FALSE(controller.ShouldInject("a", "sendto", args));
  EXPECT_TRUE(controller.ShouldInject("b", "sendto", args));
}

TEST_F(RuntimeExtraTest, EmptyRotationNeverInjects) {
  RotatingBlackoutController controller({}, 5);
  ArgVec args;
  EXPECT_FALSE(controller.ShouldInject("a", "sendto", args));
}

TEST_F(RuntimeExtraTest, ScenarioWithNoTriggersNeverInjects) {
  Scenario s = MustParse(R"(
<scenario>
  <function name="close" return="-1" errno="EIO"/>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd), 0);  // an empty conjunction does not fire
  libc_.set_interposer(nullptr);
}

TEST_F(RuntimeExtraTest, ProgramStateTriggerUnknownVariableIsFalse) {
  Scenario s = MustParse(R"(
<scenario>
  <trigger id="ps" class="ProgramStateTrigger">
    <args><var>does_not_exist</var><op>eq</op><value>0</value></args>
  </trigger>
  <function name="close" return="-1" errno="EIO"><reftrigger ref="ps"/></function>
</scenario>)");
  Runtime runtime(s);
  libc_.set_interposer(&runtime);
  int fd = libc_.Open("/d/f", kORdOnly);
  EXPECT_EQ(libc_.Close(fd), 0);
  libc_.set_interposer(nullptr);
}

}  // namespace
}  // namespace lfi
