#include <gtest/gtest.h>

#include "analysis/callsite_analyzer.h"
#include "core/runtime.h"
#include "core/scenario_gen.h"
#include "core/stock_triggers.h"
#include "image/assembler.h"
#include "util/errno_codes.h"
#include "vlib/library_profiles.h"
#include "vlib/virtual_libc.h"

namespace lfi {
namespace {

// A small "application binary" with one checked and one unchecked fopen call,
// plus a partially-checked pthread_mutex_lock (E = {EDEADLK, EINVAL}).
constexpr const char* kAppAsm = R"(
module demo-app
func good_path
  call fopen
  test r0, r0
  je .err
  ret
.err:
  movi r0, 0
  ret
end
func bad_path
  call fopen
  mov r1, r0
  call fwrite
  ret
end
func partial_lock
  call pthread_mutex_lock
  cmpi r0, 35
  je .dead
  ret
.dead:
  ret
end
)";

class ScenarioGenTest : public ::testing::Test {
 protected:
  ScenarioGenTest() {
    EnsureStockTriggersRegistered();
    auto image = Assemble(kAppAsm);
    EXPECT_TRUE(image.has_value());
    image_ = *image;
    profile_ = LibcProfile();
  }

  Image image_;
  FaultProfile profile_;
};

TEST_F(ScenarioGenTest, UncheckedSiteGetsScenario) {
  CallSiteAnalyzer analyzer;
  auto reports =
      analyzer.Analyze(image_, "fopen", profile_.Find("fopen")->ErrorCodes());
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].check_class, CheckClass::kFull);
  EXPECT_EQ(reports[1].check_class, CheckClass::kNone);

  GeneratedScenarios scenarios = GenerateScenarios(reports, profile_);
  ASSERT_EQ(scenarios.unchecked.triggers().size(), 1u);
  ASSERT_EQ(scenarios.unchecked.functions().size(), 1u);
  EXPECT_TRUE(scenarios.partial.triggers().empty());

  const TriggerDecl& decl = scenarios.unchecked.triggers()[0];
  EXPECT_EQ(decl.class_name, "CallStackTrigger");
  ASSERT_NE(decl.args, nullptr);
  const XmlNode* frame = decl.args->Child("frame");
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->ChildText("module"), "demo-app");

  const FunctionAssoc& assoc = scenarios.unchecked.functions()[0];
  EXPECT_EQ(assoc.function, "fopen");
  EXPECT_EQ(assoc.retval, 0);  // fopen fails with NULL
  EXPECT_NE(assoc.errno_value, 0);
}

TEST_F(ScenarioGenTest, PartialSiteInjectsMissingCode) {
  CallSiteAnalyzer analyzer;
  auto reports = analyzer.Analyze(image_, "pthread_mutex_lock",
                                  profile_.Find("pthread_mutex_lock")->ErrorCodes());
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].check_class, CheckClass::kPartial);

  GeneratedScenarios scenarios = GenerateScenarios(reports, profile_);
  ASSERT_EQ(scenarios.partial.functions().size(), 1u);
  // EDEADLK (35) is checked; the missing EINVAL must be injected.
  EXPECT_EQ(scenarios.partial.functions()[0].retval, kEINVAL);
}

TEST_F(ScenarioGenTest, GeneratedScenarioParsesAndLoads) {
  CallSiteAnalyzer analyzer;
  auto reports =
      analyzer.Analyze(image_, "fopen", profile_.Find("fopen")->ErrorCodes());
  GeneratedScenarios scenarios = GenerateScenarios(reports, profile_);
  std::string xml = scenarios.unchecked.ToXml();
  std::string error;
  auto parsed = Scenario::Parse(xml, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  Runtime runtime(*parsed);
  EXPECT_TRUE(runtime.error().empty()) << runtime.error();
}

TEST_F(ScenarioGenTest, GeneratedScenarioFiresAtTheRightSite) {
  CallSiteAnalyzer analyzer;
  auto reports =
      analyzer.Analyze(image_, "fopen", profile_.Find("fopen")->ErrorCodes());
  GeneratedScenarios scenarios = GenerateScenarios(reports, profile_);
  uint32_t bad_site_offset = 0;
  for (const auto& r : reports) {
    if (r.check_class == CheckClass::kNone) {
      bad_site_offset = r.site.offset;
    }
  }

  VirtualFs fs;
  VirtualNet net;
  VirtualLibc libc(&fs, &net, "demo-app");
  fs.MkDir("/d");
  fs.WriteFile("/d/f", "x");

  Runtime runtime(scenarios.unchecked);
  libc.set_interposer(&runtime);
  {
    // Simulated execution of the *checked* site: no injection.
    ScopedFrame frame(&libc.stack(), "demo-app", "good_path");
    frame.set_offset(0);  // the checked call site is at offset 0
    VFile* f = libc.FOpen("/d/f", "r");
    EXPECT_NE(f, nullptr);
    libc.FClose(f);
  }
  {
    // Simulated execution of the *unchecked* site: injection.
    ScopedFrame frame(&libc.stack(), "demo-app", "bad_path");
    frame.set_offset(bad_site_offset);
    EXPECT_EQ(libc.FOpen("/d/f", "r"), nullptr);
  }
  libc.set_interposer(nullptr);
  EXPECT_EQ(runtime.injections(), 1u);
}

TEST_F(ScenarioGenTest, SiteScenarioForFullyCheckedSiteStillTargetsIt) {
  CallSiteAnalyzer analyzer;
  auto reports =
      analyzer.Analyze(image_, "fopen", profile_.Find("fopen")->ErrorCodes());
  // GenerateSiteScenario works site by site regardless of class.
  Scenario one = GenerateSiteScenario(reports[0], profile_);
  EXPECT_EQ(one.triggers().size(), 1u);
  EXPECT_EQ(one.functions().size(), 1u);
}

TEST_F(ScenarioGenTest, UnknownFunctionProducesNothing) {
  CallSiteReport report;
  report.site.module = "m";
  report.site.function = "not_in_profile";
  report.check_class = CheckClass::kNone;
  Scenario s = GenerateSiteScenario(report, profile_);
  EXPECT_TRUE(s.triggers().empty());
  EXPECT_TRUE(s.functions().empty());
}

}  // namespace
}  // namespace lfi
