// The headline integration test: the §7.1 campaign, run "entirely
// automatically" against every registered system, finds the 11 previously
// unknown bugs of Table 1 across the paper's four systems plus the bfs
// target's planted superblock crash.

#include <gtest/gtest.h>

#include <set>

#include "apps/common/bug_campaign.h"

namespace lfi {
namespace {

std::set<std::string> Kinds(const std::vector<FoundBug>& bugs) {
  std::set<std::string> out;
  for (const auto& b : bugs) {
    out.insert(b.kind + " / " + b.where);
  }
  return out;
}

TEST(Campaign, GitFindsItsFiveBugs) {
  auto bugs = RunGitCampaign();
  EXPECT_EQ(bugs.size(), 5u) << [&] {
    std::string s;
    for (const auto& b : bugs) {
      s += b.kind + " / " + b.where + " (" + b.injected + ")\n";
    }
    return s;
  }();
  auto kinds = Kinds(bugs);
  EXPECT_TRUE(kinds.count("SIGSEGV / readdir"));
  EXPECT_TRUE(kinds.count("SIGSEGV / xmerge.c:567 result buffer"));
  EXPECT_TRUE(kinds.count("SIGSEGV / xmerge.c:571 marker buffer"));
  EXPECT_TRUE(kinds.count("SIGSEGV / xpatience.c:191 histogram table"));
  EXPECT_TRUE(kinds.count("data loss / repository corrupted by hook environment"));
}

TEST(Campaign, MysqlFindsItsTwoBugs) {
  auto bugs = RunMysqlCampaign();
  ASSERT_EQ(bugs.size(), 2u) << [&] {
    std::string s;
    for (const auto& b : bugs) {
      s += b.kind + " / " + b.where + " (" + b.injected + ")\n";
    }
    return s;
  }();
  bool double_unlock = false;
  bool errmsg_crash = false;
  for (const auto& b : bugs) {
    if (b.kind == "double mutex unlock") {
      double_unlock = true;
    }
    if (b.kind == "SIGSEGV" && b.where.find("errmsg") != std::string::npos) {
      errmsg_crash = true;
    }
  }
  EXPECT_TRUE(double_unlock);
  EXPECT_TRUE(errmsg_crash);
}

TEST(Campaign, BindFindsItsTwoBugs) {
  auto bugs = RunBindCampaign();
  ASSERT_EQ(bugs.size(), 2u) << [&] {
    std::string s;
    for (const auto& b : bugs) {
      s += b.kind + " / " + b.where + " (" + b.injected + ")\n";
    }
    return s;
  }();
  bool stats_crash = false;
  bool dst_abort = false;
  for (const auto& b : bugs) {
    if (b.where.find("xmlTextWriterWriteElement") != std::string::npos) {
      stats_crash = true;
    }
    if (b.where.find("dst_lib_destroy") != std::string::npos) {
      dst_abort = true;
    }
  }
  EXPECT_TRUE(stats_crash);
  EXPECT_TRUE(dst_abort);
}

TEST(Campaign, PbftFindsItsTwoBugs) {
  auto bugs = RunPbftCampaign();
  ASSERT_EQ(bugs.size(), 2u) << [&] {
    std::string s;
    for (const auto& b : bugs) {
      s += b.kind + " / " + b.where + " (" + b.injected + ")\n";
    }
    return s;
  }();
  bool shutdown_crash = false;
  bool view_change_crash = false;
  for (const auto& b : bugs) {
    if (b.where.find("fwrite") != std::string::npos) {
      shutdown_crash = true;
    }
    if (b.where.find("view change") != std::string::npos) {
      view_change_crash = true;
    }
  }
  EXPECT_TRUE(shutdown_crash);
  EXPECT_TRUE(view_change_crash);
}

TEST(Campaign, FullCampaignFindsTwelveBugs) {
  auto bugs = RunFullCampaign();
  EXPECT_EQ(bugs.size(), 12u);
  // The twelfth bug beyond the paper's eleven is bfs's unchecked-fopen
  // superblock crash.
  size_t bfs_bugs = 0;
  for (const auto& b : bugs) {
    if (b.system == "bfs") {
      ++bfs_bugs;
      EXPECT_EQ(b.kind, "SIGSEGV");
      EXPECT_NE(b.where.find("fwrite"), std::string::npos);
    }
  }
  EXPECT_EQ(bfs_bugs, 1u);
}

}  // namespace
}  // namespace lfi
