// The binary extent journal (core/extent_journal.h, docs/journal-format.md):
// property-style XML<->extent conversion round trips over randomized
// journals, torn-tail truncation at every byte offset, footer-index random
// access vs the full scan, kill-and-resume bit-identity in extent mode at
// several worker counts, and the LZ/varint primitives the format builds on.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "core/campaign_engine.h"
#include "core/extent_journal.h"
#include "core/journal.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "util/binary_io.h"
#include "util/errno_codes.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace lfi {
namespace {

// The same escaping edge cases journal_test.cc throws at the XML layer: the
// conversion round trip must carry them through both encodings unchanged.
const char* const kNastyStrings[] = {
    "plain",          "with space",       "quo\"te",        "apos'trophe",
    "amp&ersand",     "less<than",        "greater>than",   "comma,separated",
    "new\nline",      "tab\tchar",        "ctrl\x01char",   "mixed<&\"'\x02>end",
};

std::string NastyString(Rng& rng) {
  return kNastyStrings[rng.NextBelow(std::size(kNastyStrings))];
}

const int kErrnoPool[] = {0, kEIO, kENOMEM, kEINTR, 7, 123};

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Scenario RandomScenario(Rng& rng) {
  Scenario scenario;
  size_t triggers = 1 + rng.NextBelow(3);
  for (size_t i = 0; i < triggers; ++i) {
    TriggerDecl decl;
    decl.id = NastyString(rng) + StrFormat("-%zu", i);
    decl.class_name = rng.Chance(0.5) ? "CallCountTrigger" : NastyString(rng);
    if (rng.Chance(0.5)) {
      auto args = std::make_unique<XmlNode>("args");
      args->AddChild("count")->set_text(StrFormat("%llu", (unsigned long long)rng.NextBelow(9)));
      args->AddChild("extra")->SetAttr("value", NastyString(rng));
      decl.args = std::shared_ptr<XmlNode>(args.release());
    }
    scenario.AddTrigger(std::move(decl));
  }
  size_t functions = 1 + rng.NextBelow(4);
  for (size_t i = 0; i < functions; ++i) {
    FunctionAssoc assoc;
    assoc.function = rng.Chance(0.3) ? NastyString(rng) : StrFormat("fn_%zu", i);
    assoc.argc = static_cast<int>(rng.NextBelow(4));
    if (rng.Chance(0.2)) {
      assoc.unused = true;
    } else {
      assoc.retval = rng.NextInRange(-1000000, 1000000);
      assoc.errno_value = kErrnoPool[rng.NextBelow(std::size(kErrnoPool))];
    }
    size_t refs = 1 + rng.NextBelow(scenario.triggers().size());
    for (size_t r = 0; r < refs; ++r) {
      TriggerRef ref;
      ref.ref = scenario.triggers()[rng.NextBelow(scenario.triggers().size())].id;
      ref.negate = rng.Chance(0.25);
      assoc.triggers.push_back(ref);
    }
    scenario.AddFunction(std::move(assoc));
  }
  return scenario;
}

JournalRecord RandomRecord(Rng& rng, size_t index) {
  JournalRecord record;
  record.label = StrFormat("job-%zu ", index) + NastyString(rng);
  record.seed = rng.Next();
  record.stream_index = rng.Chance(0.9) ? index : JournalRecord::kNoStreamIndex;
  record.scenario = RandomScenario(rng);
  if (rng.Chance(0.1)) {
    record.gated = true;  // gated records carry no result/feedback
    return record;
  }
  record.result.fingerprint = rng.Chance(0.5) ? NastyString(rng) : "";
  record.result.injections = rng.NextBelow(5);
  if (rng.Chance(0.3)) {
    record.result.bugs.push_back(
        FoundBug{"git", NastyString(rng), NastyString(rng), record.label});
  }
  size_t log_records = rng.NextBelow(3);
  for (size_t i = 0; i < log_records; ++i) {
    InjectionRecord injection;
    injection.sequence = i + 1;
    injection.function = StrFormat("call_%zu", i);
    injection.retval = rng.NextInRange(-1000, 1000);
    injection.errno_value = kErrnoPool[rng.NextBelow(std::size(kErrnoPool))];
    injection.trigger_ids.push_back(NastyString(rng));
    injection.call_number = 1 + rng.NextBelow(100);
    injection.stack.push_back(StackFrame{NastyString(rng), StrFormat("frame_%zu", i),
                                         static_cast<uint32_t>(rng.NextBelow(0x1000))});
    if (rng.Chance(0.5)) {
      injection.process = NastyString(rng);
    }
    record.result.log.Record(std::move(injection));
  }
  // Mostly-overlapping block names across records: the per-extent string
  // pool's intended workload.
  size_t blocks = 1 + rng.NextBelow(6);
  for (size_t i = 0; i < blocks; ++i) {
    std::string name = StrFormat("app.block_%zu", rng.NextBelow(8));
    record.result.coverage.RegisterBlock(name, /*recovery=*/i % 2 == 0,
                                         /*lines=*/1 + rng.NextBelow(20));
    for (size_t hit = rng.NextBelow(4); hit > 0; --hit) {
      record.result.coverage.Hit(name);
    }
  }
  record.feedback.new_bug = !record.result.bugs.empty();
  record.feedback.injections = record.result.injections;
  record.feedback.fingerprint = record.result.fingerprint;
  if (rng.Chance(0.5)) {
    record.feedback.new_blocks.push_back("app.block_0");
  }
  return record;
}

void ExpectRecordsEqual(const std::vector<JournalRecord>& got,
                        const std::vector<JournalRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].label, want[i].label) << i;
    EXPECT_EQ(got[i].seed, want[i].seed) << i;
    EXPECT_EQ(got[i].gated, want[i].gated) << i;
    EXPECT_EQ(got[i].stream_index, want[i].stream_index) << i;
    EXPECT_TRUE(got[i].scenario == want[i].scenario) << i;
    EXPECT_EQ(got[i].result.fingerprint, want[i].result.fingerprint) << i;
    EXPECT_EQ(got[i].result.injections, want[i].result.injections) << i;
    EXPECT_TRUE(got[i].result.bugs == want[i].result.bugs) << i;
    EXPECT_TRUE(got[i].result.log == want[i].result.log) << i;
    EXPECT_EQ(got[i].result.coverage.hits(), want[i].result.coverage.hits()) << i;
    EXPECT_TRUE(got[i].feedback == want[i].feedback) << i;
  }
}

// Writes `records` into a finalized journal at `path` in `format`.
void WriteJournal(const std::string& path, const JournalMetadata& meta,
                  const std::vector<JournalRecord>& records, JournalFormat format) {
  std::remove(path.c_str());
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Create(path, meta, &error, format)) << error;
  for (const JournalRecord& record : records) {
    ASSERT_TRUE(journal.Append(record));
  }
  ASSERT_TRUE(journal.Finalize(&error)) << error;
}

// --- conversion round trips -------------------------------------------------

// The bit-equivalence contract: extent -> xml -> extent reproduces the exact
// input bytes, the xml leg byte-matches a live XML-mode write of the same
// records, and every field survives. Record counts straddle the 16-record
// extent boundary (0, 1, partial, exact, multi-extent).
TEST(ExtentJournal, ConvertRoundTripsByteIdentically) {
  Rng rng(2026);
  for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{16}, size_t{41}}) {
    SCOPED_TRACE(count);
    JournalMetadata meta = {{"command", "explore"}, {"system", "git"},
                           {"note", NastyString(rng)}};
    std::vector<JournalRecord> records;
    for (size_t i = 0; i < count; ++i) {
      records.push_back(RandomRecord(rng, i));
    }

    std::string extent_path = TempPath(StrFormat("ext_conv_%zu.lfij", count).c_str());
    std::string xml_path = TempPath(StrFormat("ext_conv_%zu.xml", count).c_str());
    std::string live_xml_path = TempPath(StrFormat("ext_conv_%zu_live.xml", count).c_str());
    std::string back_path = TempPath(StrFormat("ext_conv_%zu_back.lfij", count).c_str());
    std::remove(xml_path.c_str());
    std::remove(back_path.c_str());

    WriteJournal(extent_path, meta, records, JournalFormat::kExtent);
    ASSERT_TRUE(IsExtentJournal(ReadFile(extent_path)));

    // extent -> xml: defaults to the opposite encoding, and matches what a
    // live XML-mode run of the same records would have written.
    std::string error;
    size_t converted = 0;
    JournalFormat written = JournalFormat::kExtent;
    ASSERT_TRUE(ConvertJournal(extent_path, xml_path, std::nullopt, &error, &converted,
                               &written)) << error;
    EXPECT_EQ(converted, count);
    EXPECT_EQ(written, JournalFormat::kXml);
    WriteJournal(live_xml_path, meta, records, JournalFormat::kXml);
    EXPECT_EQ(ReadFile(xml_path), ReadFile(live_xml_path));

    // xml -> extent: bit-identical to the original.
    ASSERT_TRUE(ConvertJournal(xml_path, back_path, std::nullopt, &error)) << error;
    EXPECT_EQ(ReadFile(back_path), ReadFile(extent_path));

    // And both encodings load back to the same records and header.
    auto loaded = CampaignJournal::Load(extent_path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->format(), JournalFormat::kExtent);
    EXPECT_EQ(loaded->metadata(), meta);
    ExpectRecordsEqual(loaded->records(), records);
    auto xml_loaded = CampaignJournal::Load(xml_path, &error);
    ASSERT_TRUE(xml_loaded.has_value()) << error;
    EXPECT_EQ(xml_loaded->format(), JournalFormat::kXml);
    EXPECT_EQ(xml_loaded->metadata(), meta);
    ExpectRecordsEqual(xml_loaded->records(), records);
  }
}

// Converting onto an existing file must refuse, not clobber the artifact.
TEST(ExtentJournal, ConvertRefusesToOverwrite) {
  Rng rng(3);
  std::string path = TempPath("ext_noclobber.lfij");
  WriteJournal(path, {{"command", "explore"}}, {RandomRecord(rng, 0)},
               JournalFormat::kExtent);
  std::string error;
  EXPECT_FALSE(ConvertJournal(path, path, std::nullopt, &error));
  EXPECT_FALSE(error.empty());
}

// --- torn-tail recovery -----------------------------------------------------

// Truncates a finalized multi-extent journal at EVERY byte offset: each
// prefix must either fail to parse (file-header bytes cut) or recover
// exactly the records of the extents that survived intact -- never garbage,
// never a partial extent. Only the untruncated file has a valid footer.
TEST(ExtentJournal, TruncationAtEveryByteRecoversWholeExtentsOnly) {
  Rng rng(17);
  JournalMetadata meta = {{"command", "explore"}, {"system", "git"}};
  std::vector<JournalRecord> records;
  for (size_t i = 0; i < 40; ++i) {  // 3 extents: 16 + 16 + 8
    records.push_back(RandomRecord(rng, i));
  }
  std::string path = TempPath("ext_torn.lfij");
  WriteJournal(path, meta, records, JournalFormat::kExtent);
  std::string bytes = ReadFile(path);

  auto full = ParseExtentJournal(bytes);
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(full->footer_valid);
  ASSERT_EQ(full->extents.size(), 3u);

  // Cumulative record counts at each sealed-extent boundary.
  std::vector<size_t> boundary_counts = {0};
  std::vector<uint64_t> boundary_offsets = {full->extents[0].offset};
  size_t running = 0;
  for (const ExtentInfo& extent : full->extents) {
    running += extent.record_count;
    boundary_counts.push_back(running);
    boundary_offsets.push_back(extent.offset + kExtentHeaderBytes + extent.stored_size);
  }

  size_t header_end = static_cast<size_t>(full->extents[0].offset);
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::string error;
    auto torn = ParseExtentJournal(std::string_view(bytes).substr(0, cut), &error);
    if (cut < header_end) {
      EXPECT_FALSE(torn.has_value()) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(torn.has_value()) << "cut=" << cut << ": " << error;
    // The recovered prefix is exactly the extents wholly inside the cut.
    size_t sealed = 0;
    while (sealed + 1 < boundary_offsets.size() && boundary_offsets[sealed + 1] <= cut) {
      ++sealed;
    }
    EXPECT_EQ(torn->records.size(), boundary_counts[sealed]) << "cut=" << cut;
    EXPECT_EQ(torn->extents.size(), sealed) << "cut=" << cut;
    EXPECT_EQ(torn->intact_bytes, boundary_offsets[sealed]) << "cut=" << cut;
    EXPECT_EQ(torn->footer_valid, cut == bytes.size()) << "cut=" << cut;
    EXPECT_EQ(torn->meta, meta);
  }
}

// Reopening a torn journal for append truncates the tail and continues the
// extent stream; re-appending the lost records and finalizing reproduces the
// uninterrupted file byte-for-byte (the resume bit-identity contract at the
// encoding level).
TEST(ExtentJournal, AppendAfterTornTailRegrowsBitIdentically) {
  Rng rng(23);
  JournalMetadata meta = {{"command", "explore"}, {"system", "git"}};
  std::vector<JournalRecord> records;
  for (size_t i = 0; i < 40; ++i) {
    records.push_back(RandomRecord(rng, i));
  }
  std::string full_path = TempPath("ext_regrow_full.lfij");
  WriteJournal(full_path, meta, records, JournalFormat::kExtent);
  std::string bytes = ReadFile(full_path);

  // A spread of cuts: mid first extent, exactly at a boundary, mid second
  // extent, mid footer, and mid trailer.
  Rng cut_rng(7);
  std::vector<size_t> cuts;
  auto full = ParseExtentJournal(bytes);
  ASSERT_TRUE(full.has_value());
  cuts.push_back(static_cast<size_t>(full->extents[0].offset) + 3);
  cuts.push_back(static_cast<size_t>(full->extents[1].offset));
  cuts.push_back(static_cast<size_t>(full->extents[1].offset) + kExtentHeaderBytes + 5);
  cuts.push_back(bytes.size() - kExtentTrailerBytes - 2);
  cuts.push_back(bytes.size() - 3);
  for (int i = 0; i < 5; ++i) {
    cuts.push_back(static_cast<size_t>(full->extents[0].offset) +
                   cut_rng.NextBelow(bytes.size() - full->extents[0].offset));
  }

  for (size_t cut : cuts) {
    SCOPED_TRACE(cut);
    std::string torn_path = TempPath(StrFormat("ext_regrow_%zu.lfij", cut).c_str());
    {
      std::ofstream out(torn_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    std::string error;
    auto torn = CampaignJournal::Load(torn_path, &error);
    ASSERT_TRUE(torn.has_value()) << error;
    size_t kept = torn->records().size();
    ASSERT_LE(kept, records.size());
    ASSERT_TRUE(torn->OpenAppend(torn_path, &error)) << error;
    for (size_t i = kept; i < records.size(); ++i) {
      ASSERT_TRUE(torn->Append(records[i]));
    }
    ASSERT_TRUE(torn->Finalize(&error)) << error;
    EXPECT_EQ(ReadFile(torn_path), bytes);
  }
}

// --- footer-index random access ---------------------------------------------

// Decoding each extent independently through its footer index entry must
// reproduce the full-scan record stream, and the index's stream-index ranges
// must bracket the records they point at.
TEST(ExtentJournal, FooterIndexRandomAccessEqualsFullScan) {
  Rng rng(31);
  JournalMetadata meta = {{"command", "explore"}, {"system", "pbft"}};
  std::vector<JournalRecord> records;
  for (size_t i = 0; i < 40; ++i) {
    records.push_back(RandomRecord(rng, i));
  }
  std::string path = TempPath("ext_index.lfij");
  WriteJournal(path, meta, records, JournalFormat::kExtent);
  std::string bytes = ReadFile(path);

  auto parsed = ParseExtentJournal(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->footer_valid);
  ExpectRecordsEqual(parsed->records, records);

  std::vector<JournalRecord> via_index;
  for (const ExtentInfo& extent : parsed->extents) {
    std::vector<JournalRecord> chunk;
    std::string error;
    ASSERT_TRUE(DecodeExtentRecords(bytes, extent, &chunk, &error)) << error;
    ASSERT_EQ(chunk.size(), extent.record_count);
    for (const JournalRecord& record : chunk) {
      if (record.stream_index != JournalRecord::kNoStreamIndex) {
        EXPECT_GE(record.stream_index, extent.first_index);
        EXPECT_LE(record.stream_index, extent.last_index);
      }
      via_index.push_back(record);
    }
  }
  ExpectRecordsEqual(via_index, parsed->records);

  // Corrupting one payload byte must fail that extent's CRC check, loudly.
  std::string corrupt = bytes;
  size_t flip = static_cast<size_t>(parsed->extents[1].offset) + kExtentHeaderBytes + 2;
  corrupt[flip] = static_cast<char>(corrupt[flip] ^ 0x40);
  std::vector<JournalRecord> chunk;
  std::string error;
  EXPECT_FALSE(DecodeExtentRecords(corrupt, parsed->extents[1], &chunk, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

// --- kill-and-resume in extent mode ------------------------------------------

// The driver-level determinism bar, rerun against the binary encoding: kill
// artifacts (byte-truncated extent journals) resumed at 1/2/8 workers must
// regrow bit-identically to the uninterrupted single-worker run.
TEST(ExtentJournal, KillAndResumeBitIdenticalAcrossWorkerCounts) {
  EnsureStockTriggersRegistered();
  std::string full_path = TempPath("ext_resume_full.lfij");
  std::remove(full_path.c_str());

  CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kRandom;
  spec.budget = 20;  // two extents: 16 + 4
  spec.seed = 3;
  spec.journal_path = full_path;
  std::string error;
  auto uninterrupted = CampaignDriver(spec).Run(&error);
  ASSERT_TRUE(uninterrupted.has_value()) << error;
  std::string full_bytes = ReadFile(full_path);
  ASSERT_TRUE(IsExtentJournal(full_bytes));

  auto parsed = ParseExtentJournal(full_bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->extents.size(), 2u);

  // Cuts: before any extent sealed, mid second extent, and mid footer.
  std::vector<size_t> cuts = {
      static_cast<size_t>(parsed->extents[0].offset) + 7,
      static_cast<size_t>(parsed->extents[1].offset) + kExtentHeaderBytes + 1,
      full_bytes.size() - kExtentTrailerBytes - 1,
  };
  for (int workers : {1, 2, 8}) {
    for (size_t cut : cuts) {
      SCOPED_TRACE(StrFormat("workers=%d cut=%zu", workers, cut));
      std::string partial_path =
          TempPath(StrFormat("ext_resume_%d_%zu.lfij", workers, cut).c_str());
      {
        std::ofstream out(partial_path, std::ios::binary | std::ios::trunc);
        out.write(full_bytes.data(), static_cast<std::streamsize>(cut));
      }
      CampaignSpec resume_spec;
      resume_spec.mode = CampaignMode::kResume;
      resume_spec.journal_path = partial_path;
      resume_spec.workers = workers;
      auto resumed = CampaignDriver(resume_spec).Run(&error);
      ASSERT_TRUE(resumed.has_value()) << error;
      EXPECT_EQ(resumed->bugs, uninterrupted->bugs);
      EXPECT_EQ(resumed->coverage.hits(), uninterrupted->coverage.hits());
      EXPECT_EQ(resumed->scenarios_run, uninterrupted->scenarios_run);
      EXPECT_EQ(ReadFile(partial_path), full_bytes);
    }
  }
}

// --- the primitives ----------------------------------------------------------

TEST(BinaryIo, VarintAndZigZagRoundTrip) {
  Rng rng(5);
  ByteWriter writer;
  std::vector<uint64_t> unsigned_values = {0, 1, 127, 128, 16383, 16384,
                                           uint64_t(-1), uint64_t(-1) - 1};
  std::vector<int64_t> signed_values = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int i = 0; i < 100; ++i) {
    unsigned_values.push_back(rng.Next() >> rng.NextBelow(64));
    signed_values.push_back(static_cast<int64_t>(rng.Next()));
  }
  for (uint64_t v : unsigned_values) {
    writer.PutVarint(v);
  }
  for (int64_t v : signed_values) {
    writer.PutSigned(v);
  }
  ByteReader reader(writer.buffer());
  for (uint64_t v : unsigned_values) {
    EXPECT_EQ(reader.GetVarint(), v);
  }
  for (int64_t v : signed_values) {
    EXPECT_EQ(reader.GetSigned(), v);
  }
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIo, LzRoundTripsRandomBuffers) {
  Rng rng(9);
  std::vector<std::string> buffers = {"", "a", "abcabcabcabc"};
  for (int i = 0; i < 50; ++i) {
    std::string buffer;
    size_t length = rng.NextBelow(4096);
    while (buffer.size() < length) {
      if (rng.Chance(0.5) && !buffer.empty()) {
        // Repeat a previous slice: the compressible case.
        size_t start = rng.NextBelow(buffer.size());
        size_t run = 1 + rng.NextBelow(64);
        buffer.append(buffer.substr(start, run));
      } else {
        buffer.push_back(static_cast<char>(rng.NextBelow(256)));
      }
    }
    buffers.push_back(std::move(buffer));
  }
  for (const std::string& buffer : buffers) {
    std::string packed = LzCompress(buffer);
    auto unpacked = LzDecompress(packed, buffer.size());
    ASSERT_TRUE(unpacked.has_value());
    EXPECT_EQ(*unpacked, buffer);
    // Wrong raw_size must be rejected, not padded or truncated.
    if (!buffer.empty()) {
      EXPECT_FALSE(LzDecompress(packed, buffer.size() - 1).has_value());
    }
  }
}

}  // namespace
}  // namespace lfi
