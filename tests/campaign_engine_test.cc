// The parallel campaign engine: serial equivalence, deterministic merges,
// concurrent dedup, and per-scenario seed reproducibility.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/common/bug_campaign.h"
#include "apps/git/git.h"
#include "core/analysis_cache.h"
#include "core/campaign_engine.h"
#include "core/controller.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/work_queue.h"
#include "vlib/library_profiles.h"
#include "vlib/virtual_libc.h"

namespace lfi {
namespace {

void ExpectSameBugs(const std::vector<FoundBug>& a, const std::vector<FoundBug>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].system, b[i].system) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].where, b[i].where) << i;
    EXPECT_EQ(a[i].injected, b[i].injected) << i;
  }
}

// --- worker pool ----------------------------------------------------------

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  constexpr size_t kJobs = 257;
  std::vector<std::atomic<int>> counts(kJobs);
  WorkerPool::ParallelFor(4, kJobs, [&](size_t job, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    counts[job].fetch_add(1);
  });
  for (size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "job " << i;
  }
}

TEST(WorkerPool, PropagatesTheFirstException) {
  EXPECT_THROW(WorkerPool::ParallelFor(4, 64,
                                       [&](size_t job, int) {
                                         if (job == 13) {
                                           throw std::runtime_error("boom");
                                         }
                                       }),
               std::runtime_error);
}

TEST(WorkerPool, StealingDrainsImbalancedQueues) {
  // One worker's jobs are slow; the others must steal to finish the batch.
  std::atomic<int> done{0};
  WorkerPool::ParallelFor(4, 32, [&](size_t job, int) {
    if (job % 4 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 32);
}

// --- BugSink dedup under concurrent merges --------------------------------

TEST(BugSink, DedupsConcurrentOverlappingMerges) {
  constexpr int kThreads = 8;
  constexpr int kSites = 64;
  BugSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int round = 0; round < 50; ++round) {
        for (int site = 0; site < kSites; ++site) {
          // Every thread reports every site, with a thread-specific
          // attribution: exactly one per site may survive.
          sink.Report(FoundBug{"sys", "SIGSEGV", "site-" + std::to_string(site),
                               "thread-" + std::to_string(t)});
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::vector<FoundBug> bugs = sink.Sorted();
  ASSERT_EQ(bugs.size(), static_cast<size_t>(kSites));
  std::set<std::string> sites;
  for (const FoundBug& bug : bugs) {
    sites.insert(bug.where);
  }
  EXPECT_EQ(sites.size(), static_cast<size_t>(kSites));
}

// --- deterministic job-order merge ----------------------------------------

TEST(CampaignEngine, JobOrderDecidesDedupWinnerRegardlessOfCompletionOrder) {
  // Two jobs expose the same crash site. Job 0 is slow, so with 2 workers
  // job 1 finishes first -- but the job-order merge must still attribute the
  // bug to job 0, exactly like the serial loop would.
  for (int workers : {1, 2, 8}) {
    std::vector<CampaignJob> jobs;
    for (int i = 0; i < 2; ++i) {
      CampaignJob job;
      job.label = "job-" + std::to_string(i);
      job.run = [i](const CampaignJob& self) {
        if (i == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        return std::vector<FoundBug>{{"sys", "SIGSEGV", "shared-site", self.label}};
      };
      jobs.push_back(std::move(job));
    }
    CampaignEngine engine({.workers = workers});
    std::vector<FoundBug> bugs = engine.Run(jobs);
    ASSERT_EQ(bugs.size(), 1u) << "workers=" << workers;
    EXPECT_EQ(bugs[0].injected, "job-0") << "workers=" << workers;
  }
}

TEST(CampaignEngine, MaxBugsGatesSaturableJobsDeterministically) {
  // Jobs 0-1 always report; jobs 2-9 are fuzz-style jobs gated by max_bugs.
  // After the first two bugs the gated jobs must contribute nothing, no
  // matter how many workers raced ahead.
  for (int workers : {1, 4}) {
    std::vector<CampaignJob> jobs;
    for (int i = 0; i < 10; ++i) {
      CampaignJob job;
      job.label = "job-" + std::to_string(i);
      job.skip_when_saturated = i >= 2;
      job.run = [i](const CampaignJob& self) {
        return std::vector<FoundBug>{
            {"sys", "SIGSEGV", "site-" + std::to_string(i), self.label}};
      };
      jobs.push_back(std::move(job));
    }
    CampaignEngine engine({.workers = workers, .max_bugs = 2});
    std::vector<FoundBug> bugs = engine.Run(jobs);
    ASSERT_EQ(bugs.size(), 2u) << "workers=" << workers;
    EXPECT_EQ(bugs[0].where, "site-0");
    EXPECT_EQ(bugs[1].where, "site-1");
  }
}

// --- campaign equivalence: parallel == serial baseline --------------------

TEST(CampaignEngine, PbftCampaignIdenticalAcrossWorkerCounts) {
  std::vector<FoundBug> serial = RunPbftCampaign({.workers = 1});
  ASSERT_EQ(serial.size(), 2u);
  ExpectSameBugs(serial, RunPbftCampaign({.workers = 2}));
  ExpectSameBugs(serial, RunPbftCampaign({.workers = 8}));
}

TEST(CampaignEngine, FullCampaignIdenticalAcrossWorkerCounts) {
  std::vector<FoundBug> serial = RunFullCampaign({.workers = 1});
  EXPECT_EQ(serial.size(), 12u);
  ExpectSameBugs(serial, RunFullCampaign({.workers = 4}));
}

// --- per-scenario seed reproducibility ------------------------------------

// A random scenario with no <seed> in its <args>: the stream comes entirely
// from Runtime::Options::seed via Trigger::Reseed.
Scenario RandomScenarioWithoutDeclaredSeed() {
  Scenario s;
  TriggerDecl decl;
  decl.id = "rand";
  decl.class_name = "RandomTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("probability")->set_text("0.5");
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = "read";
  assoc.retval = -1;
  assoc.errno_value = kEIO;
  assoc.triggers.push_back(TriggerRef{"rand", false});
  s.AddFunction(std::move(assoc));
  return s;
}

std::vector<FoundBug> RunSeededRandomCampaign(int workers) {
  EnsureStockTriggersRegistered();
  std::vector<CampaignJob> jobs;
  for (uint64_t i = 0; i < 16; ++i) {
    CampaignJob job;
    job.scenario = RandomScenarioWithoutDeclaredSeed();
    job.label = "trial-" + std::to_string(i);
    job.seed = i + 1;
    job.run = [](const CampaignJob& self) {
      VirtualFs fs;
      VirtualNet net;
      VirtualLibc libc(&fs, &net, "seed-app");
      fs.WriteFile("/f", std::string(64, 'x'));
      TestController controller(self.scenario, SeededOptions(self.seed));
      TestOutcome outcome = controller.RunTest(&libc, [&] {
        int fd = libc.Open("/f", kORdOnly);
        char buf[1];
        for (int i = 0; i < 24; ++i) {
          libc.Read(fd, buf, 1);
        }
        libc.Close(fd);
        return true;
      });
      // Encode the injection trace length so the comparison below is
      // sensitive to every single trigger decision.
      return std::vector<FoundBug>{
          {"seedtest", "injections", self.label, std::to_string(outcome.injections)}};
    };
    jobs.push_back(std::move(job));
  }
  CampaignEngine engine({.workers = workers});
  return engine.Run(jobs);
}

TEST(CampaignEngine, SeedsMakeRandomScenariosReproducibleAcrossWorkerCounts) {
  std::vector<FoundBug> one = RunSeededRandomCampaign(1);
  ASSERT_EQ(one.size(), 16u);
  ExpectSameBugs(one, RunSeededRandomCampaign(1));  // rerun: bit-stable
  ExpectSameBugs(one, RunSeededRandomCampaign(2));
  ExpectSameBugs(one, RunSeededRandomCampaign(8));

  // Different seeds must actually produce different streams, otherwise the
  // equality above would be vacuous.
  std::set<std::string> distinct_counts;
  for (const FoundBug& bug : one) {
    distinct_counts.insert(bug.injected);
  }
  EXPECT_GT(distinct_counts.size(), 1u);
}

// --- analysis cache -------------------------------------------------------

TEST(AnalysisCache, ComputesOncePerModuleAndSharesTheResult) {
  AnalysisCache& cache = AnalysisCache::Instance();
  const FaultProfile& apr = cache.Profile("libapr", LibaprProfile);

  AnalysisCache::Stats before = cache.stats();
  const std::vector<CallSiteReport>& first = cache.Reports(GitBinary().image(), apr);
  const std::vector<CallSiteReport>& second = cache.Reports(GitBinary().image(), apr);
  AnalysisCache::Stats after = cache.stats();

  EXPECT_EQ(&first, &second);  // shared read-only, not a copy
  EXPECT_EQ(after.report_misses, before.report_misses + 1);
  EXPECT_EQ(after.report_hits, before.report_hits + 1);

  const FaultProfile& again = cache.Profile("libapr", [] {
    ADD_FAILURE() << "profile factory must not run on a cache hit";
    return FaultProfile();
  });
  EXPECT_EQ(&apr, &again);
}

}  // namespace
}  // namespace lfi
