// Property-based tests for the xdiff substrate: whatever inputs we throw at
// them, diff scripts must transform a into b, merges must respect both
// sides' changes, and patience diff must agree with Myers on equality of
// endpoints.

#include <gtest/gtest.h>

#include "apps/git/xdiff.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "vlib/virtual_libc.h"

namespace lfi {
namespace {

// Applies an edit script to reconstruct the target sequence.
std::vector<std::string> ApplyDiff(const std::vector<DiffEdit>& edits) {
  std::vector<std::string> out;
  for (const auto& e : edits) {
    if (e.kind != DiffEdit::Kind::kDelete) {
      out.push_back(e.line);
    }
  }
  return out;
}

std::vector<std::string> ApplyDiffReverse(const std::vector<DiffEdit>& edits) {
  std::vector<std::string> out;
  for (const auto& e : edits) {
    if (e.kind != DiffEdit::Kind::kInsert) {
      out.push_back(e.line);
    }
  }
  return out;
}

std::vector<std::string> RandomLines(Rng* rng, size_t max_len, int alphabet) {
  std::vector<std::string> out;
  size_t len = rng->NextBelow(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(StrFormat("line-%d", static_cast<int>(rng->NextBelow(
                                           static_cast<uint64_t>(alphabet)))));
  }
  return out;
}

class MyersProperty : public ::testing::TestWithParam<int> {};

TEST_P(MyersProperty, ScriptTransformsAIntoB) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  for (int iter = 0; iter < 50; ++iter) {
    auto a = RandomLines(&rng, 20, 6);
    auto b = RandomLines(&rng, 20, 6);
    auto edits = MyersDiff(a, b);
    EXPECT_EQ(ApplyDiff(edits), b);
    EXPECT_EQ(ApplyDiffReverse(edits), a);
  }
}

TEST_P(MyersProperty, IdenticalInputsYieldOnlyKeeps) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 3);
  auto a = RandomLines(&rng, 30, 4);
  for (const auto& e : MyersDiff(a, a)) {
    EXPECT_EQ(e.kind, DiffEdit::Kind::kKeep);
  }
}

TEST_P(MyersProperty, EditCountBoundedBySizes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 1);
  auto a = RandomLines(&rng, 15, 5);
  auto b = RandomLines(&rng, 15, 5);
  int changes = 0;
  for (const auto& e : MyersDiff(a, b)) {
    changes += e.kind != DiffEdit::Kind::kKeep;
  }
  EXPECT_LE(static_cast<size_t>(changes), a.size() + b.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MyersProperty, ::testing::Range(1, 9));

class MergeProperty : public ::testing::TestWithParam<int> {
 protected:
  MergeProperty() : libc_(&fs_, &net_, "xdiff-test") {}
  VirtualFs fs_;
  VirtualNet net_;
  VirtualLibc libc_;
};

TEST_P(MergeProperty, OneSidedChangesAlwaysMergeCleanly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 41 + 11);
  for (int iter = 0; iter < 30; ++iter) {
    auto base = RandomLines(&rng, 12, 8);
    auto ours = RandomLines(&rng, 12, 8);
    // theirs == base: the merge must produce exactly ours.
    MergeResult r = XMerge3(&libc_, nullptr, 0, 0, base, ours, base);
    EXPECT_FALSE(r.conflict);
    EXPECT_EQ(r.lines, ours) << "iter " << iter;
    // Symmetric case.
    MergeResult r2 = XMerge3(&libc_, nullptr, 0, 0, base, base, ours);
    EXPECT_FALSE(r2.conflict);
    EXPECT_EQ(r2.lines, ours);
  }
}

TEST_P(MergeProperty, IdenticalChangesAreNotConflicts) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 59 + 2);
  auto base = RandomLines(&rng, 10, 5);
  auto change = RandomLines(&rng, 10, 5);
  MergeResult r = XMerge3(&libc_, nullptr, 0, 0, base, change, change);
  EXPECT_FALSE(r.conflict);
  EXPECT_EQ(r.lines, change);
}

TEST_P(MergeProperty, MergeLeaksNoAllocations) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto base = RandomLines(&rng, 10, 4);
  auto ours = RandomLines(&rng, 10, 4);
  auto theirs = RandomLines(&rng, 10, 4);
  size_t before = libc_.live_allocations();
  XMerge3(&libc_, nullptr, 0, 0, base, ours, theirs);
  EXPECT_EQ(libc_.live_allocations(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeProperty, ::testing::Range(1, 7));

class PatienceProperty : public ::testing::TestWithParam<int> {
 protected:
  PatienceProperty() : libc_(&fs_, &net_, "xdiff-test") {}
  VirtualFs fs_;
  VirtualNet net_;
  VirtualLibc libc_;
};

TEST_P(PatienceProperty, ScriptTransformsAIntoB) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 5);
  for (int iter = 0; iter < 30; ++iter) {
    auto a = RandomLines(&rng, 16, 10);
    auto b = RandomLines(&rng, 16, 10);
    auto edits = PatienceDiff(&libc_, nullptr, 0, a, b);
    EXPECT_EQ(ApplyDiff(edits), b);
    EXPECT_EQ(ApplyDiffReverse(edits), a);
  }
}

TEST_P(PatienceProperty, AnchorsOnUniqueCommonLines) {
  // Unique common lines must survive as keeps.
  std::vector<std::string> a = {"x", "UNIQUE", "y"};
  std::vector<std::string> b = {"p", "UNIQUE", "q"};
  auto edits = PatienceDiff(&libc_, nullptr, 0, a, b);
  bool kept_unique = false;
  for (const auto& e : edits) {
    if (e.kind == DiffEdit::Kind::kKeep && e.line == "UNIQUE") {
      kept_unique = true;
    }
  }
  EXPECT_TRUE(kept_unique);
  (void)GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatienceProperty, ::testing::Range(1, 5));

TEST(SplitJoin, RoundTrip) {
  std::string text = "a\nbb\n\nccc\n";
  EXPECT_EQ(JoinLines(SplitLines(text)), text);
  EXPECT_TRUE(SplitLines("").empty());
  // Trailing line without newline is preserved by Split (Join normalizes).
  auto lines = SplitLines("x\ny");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "y");
}

TEST(RenderDiff, MarksEditKinds) {
  std::vector<DiffEdit> edits = {{DiffEdit::Kind::kKeep, "same"},
                                 {DiffEdit::Kind::kDelete, "old"},
                                 {DiffEdit::Kind::kInsert, "new"}};
  EXPECT_EQ(RenderDiff(edits), " same\n-old\n+new\n");
}

}  // namespace
}  // namespace lfi
