// The feedback-driven exploration pipeline: ScenarioSource streaming,
// injection-log replay through the engine, seed reproducibility at 1/2/8
// workers, and the coverage-guided strategy's win over the exhaustive list.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "apps/common/bug_campaign.h"
#include "apps/git/git.h"
#include "core/campaign_engine.h"
#include "core/controller.h"
#include "core/exploration.h"
#include "core/injection_log.h"
#include "core/journal.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "vlib/library_profiles.h"
#include "vlib/virtual_libc.h"

namespace lfi {
namespace {

void ExpectSameBugs(const std::vector<FoundBug>& a, const std::vector<FoundBug>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].system, b[i].system) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].where, b[i].where) << i;
    EXPECT_EQ(a[i].injected, b[i].injected) << i;
  }
}

// --- ExhaustiveSource streaming -------------------------------------------

TEST(ExhaustiveSource, StreamsInOrderAndHonoursTheBudget) {
  std::vector<CampaignJob> jobs(10);
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].label = "job-" + std::to_string(i);
  }
  ExhaustiveSource source(std::move(jobs), /*budget=*/7);
  std::vector<std::string> labels;
  for (size_t expected : {3u, 3u, 1u, 0u}) {
    std::vector<CampaignJob> batch = source.NextBatch(3);
    EXPECT_EQ(batch.size(), expected);
    for (const CampaignJob& job : batch) {
      labels.push_back(job.label);
    }
  }
  ASSERT_EQ(labels.size(), 7u);
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], "job-" + std::to_string(i));
  }
}

// --- injection-log replay --------------------------------------------------

// A fault found by random injection, replayed deterministically from its log
// record: the replay must crash at the same site with the same single
// injection (the paper's R2-style "reproduce exactly that injection").
TEST(InjectionLogReplay, ReplayedScenarioReproducesTheCrashSiteThroughTheEngine) {
  EnsureStockTriggersRegistered();

  // Expose the Table 1 readdir bug by failing every opendir.
  Scenario every_opendir = MakeRandomScenario("opendir", 0, kEMFILE, 1.0, /*seed=*/1);
  InjectionLog log;
  std::string crash_where;
  {
    VirtualFs fs;
    VirtualNet net;
    MiniGit git(&fs, &net, "/repo");
    TestController controller(every_opendir, SeededOptions(1));
    TestOutcome outcome = controller.RunTest(&git.libc(), [&] {
      git.Init();
      git.ListBranches();
      return true;
    });
    ASSERT_TRUE(outcome.crashed());
    crash_where = outcome.crash_where;
    ASSERT_FALSE(controller.runtime()->log().empty());
    log = controller.runtime()->log();
  }

  // The last record is the injection the process died on.
  Scenario replay = log.ReplayScenario(log.size() - 1);
  ASSERT_FALSE(replay.functions().empty());

  CampaignJob job;
  job.scenario = replay;
  job.label = "replay";
  job.explore = [](const CampaignJob& self) {
    JobResult result;
    VirtualFs fs;
    VirtualNet net;
    MiniGit git(&fs, &net, "/repo");
    TestController controller(self.scenario, SeededOptions(self.seed));
    TestOutcome outcome = controller.RunTest(&git.libc(), [&] {
      git.Init();
      git.ListBranches();
      return true;
    });
    if (outcome.crashed()) {
      result.bugs.push_back(
          {"git", CrashKindName(outcome.crash_kind), outcome.crash_where, self.label});
    }
    result.injections = outcome.injections;
    return result;
  };
  ExhaustiveSource source({job});
  CampaignEngine engine;
  ExplorationResult result = engine.Run(source);
  ASSERT_EQ(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].where, crash_where);
}

// --- seed reproducibility at 1/2/8 workers --------------------------------

TEST(Exploration, RandomSweepReproducibleAcrossWorkerCounts) {
  ExploreConfig config;
  config.strategy = ExploreStrategy::kRandom;
  config.budget = 24;
  config.seed = 7;

  config.workers = 1;
  ExplorationResult one = ExploreMysqlCampaign(config);
  EXPECT_EQ(one.scenarios_run, 24u);

  ExpectSameBugs(one.bugs, ExploreMysqlCampaign(config).bugs);  // rerun: bit-stable
  config.workers = 2;
  ExpectSameBugs(one.bugs, ExploreMysqlCampaign(config).bugs);
  config.workers = 8;
  ExplorationResult eight = ExploreMysqlCampaign(config);
  ExpectSameBugs(one.bugs, eight.bugs);
  // The whole observation stream, not just the bug list, must match.
  EXPECT_EQ(one.coverage.hits(), eight.coverage.hits());
}

TEST(Exploration, CoverageGuidedReproducibleAcrossWorkerCounts) {
  ExploreConfig config;
  config.strategy = ExploreStrategy::kCoverage;
  config.budget = 12;
  config.seed = 3;

  config.workers = 1;
  ExplorationResult one = ExplorePbftCampaign(config);
  config.workers = 2;
  ExpectSameBugs(one.bugs, ExplorePbftCampaign(config).bugs);
  config.workers = 8;
  // Journaling the run must not perturb it: same bugs, same coverage, one
  // journal record per scheduled scenario (tests/journal_test.cc covers the
  // resume/replay/shard workflows in depth).
  config.journal_path = ::testing::TempDir() + "exploration_journaled.xml";
  std::remove(config.journal_path.c_str());
  ExplorationResult eight = ExplorePbftCampaign(config);
  ExpectSameBugs(one.bugs, eight.bugs);
  EXPECT_EQ(one.coverage.hits(), eight.coverage.hits());
  auto journal = CampaignJournal::Load(config.journal_path);
  ASSERT_TRUE(journal.has_value());
  EXPECT_EQ(journal->records().size(), eight.scenarios_run);
}

// --- the acceptance bar: coverage-guided >= exhaustive on pbft -------------

TEST(Exploration, CoverageGuidedCoversAtLeastExhaustiveOnPbft) {
  ExploreConfig exhaustive_config;
  exhaustive_config.strategy = ExploreStrategy::kExhaustive;
  ExplorationResult exhaustive = ExplorePbftCampaign(exhaustive_config);
  ASSERT_GT(exhaustive.scenarios_run, 0u);

  // Same budget as the exhaustive list: the guided strategy must never do
  // worse than the paper's one-shot generation.
  ExploreConfig guided_config;
  guided_config.strategy = ExploreStrategy::kCoverage;
  guided_config.budget = exhaustive.scenarios_run;
  ExplorationResult guided = ExplorePbftCampaign(guided_config);
  EXPECT_GE(guided.coverage.ComputeStats().covered_recovery_blocks,
            exhaustive.coverage.ComputeStats().covered_recovery_blocks);

  // With headroom the feedback loop pushes past the analyzer's list: checked
  // sites (whose recovery paths the static classification never flags) and
  // mutations of fruitful scenarios reach recovery blocks the exhaustive
  // strategy cannot, at any budget.
  guided_config.budget = 16;
  ExplorationResult wider = ExplorePbftCampaign(guided_config);
  EXPECT_GT(wider.coverage.ComputeStats().covered_recovery_blocks,
            exhaustive.coverage.ComputeStats().covered_recovery_blocks);
  // 16 > the number of distinct sites, so the exploit (mutation) queue must
  // have produced the overflow scenarios.
  EXPECT_EQ(wider.scenarios_run, 16u);
}

// Campaigns through the streamed pipeline still match the serial baseline at
// every worker count (the ported Table 1 harnesses kept their contract).
TEST(Exploration, PortedPbftCampaignStillIdenticalAcrossWorkerCounts) {
  std::vector<FoundBug> serial = RunPbftCampaign({.workers = 1});
  ASSERT_EQ(serial.size(), 2u);
  ExpectSameBugs(serial, RunPbftCampaign({.workers = 8}));
}

}  // namespace
}  // namespace lfi
