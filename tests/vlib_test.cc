#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/errno_codes.h"
#include "util/string_util.h"
#include "vlib/sim_crash.h"
#include "vlib/virtual_libc.h"

namespace lfi {
namespace {

class VlibTest : public ::testing::Test {
 protected:
  VlibTest() : libc_(&fs_, &net_, "test-proc") {
    fs_.MkDir("/data");
  }

  VirtualFs fs_;
  VirtualNet net_;
  VirtualLibc libc_;
};

TEST_F(VlibTest, OpenMissingFileFails) {
  EXPECT_EQ(libc_.Open("/data/missing", kORdOnly), -1);
  EXPECT_EQ(libc_.verrno(), kENOENT);
}

TEST_F(VlibTest, CreateWriteReadRoundTrip) {
  int fd = libc_.Open("/data/f", kOWrOnly | kOCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(libc_.Write(fd, "hello", 5), 5);
  EXPECT_EQ(libc_.Close(fd), 0);

  fd = libc_.Open("/data/f", kORdOnly);
  ASSERT_GE(fd, 0);
  char buf[16];
  EXPECT_EQ(libc_.Read(fd, buf, sizeof buf), 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
  EXPECT_EQ(libc_.Read(fd, buf, sizeof buf), 0);  // EOF
  EXPECT_EQ(libc_.Close(fd), 0);
}

TEST_F(VlibTest, OpenWithoutParentFails) {
  EXPECT_EQ(libc_.Open("/nodir/f", kOWrOnly | kOCreate), -1);
  EXPECT_EQ(libc_.verrno(), kENOENT);
}

TEST_F(VlibTest, TruncateClearsContent) {
  fs_.WriteFile("/data/f", "old content");
  int fd = libc_.Open("/data/f", kOWrOnly | kOTrunc);
  ASSERT_GE(fd, 0);
  libc_.Close(fd);
  EXPECT_EQ(fs_.GetFile("/data/f")->data, "");
}

TEST_F(VlibTest, AppendSeeksToEnd) {
  fs_.WriteFile("/data/f", "abc");
  int fd = libc_.Open("/data/f", kOWrOnly | kOAppend);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(libc_.Write(fd, "def", 3), 3);
  libc_.Close(fd);
  EXPECT_EQ(fs_.GetFile("/data/f")->data, "abcdef");
}

TEST_F(VlibTest, LseekWhence) {
  fs_.WriteFile("/data/f", "0123456789");
  int fd = libc_.Open("/data/f", kORdOnly);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(libc_.Lseek(fd, 4, kSeekSet), 4);
  char c;
  EXPECT_EQ(libc_.Read(fd, &c, 1), 1);
  EXPECT_EQ(c, '4');
  EXPECT_EQ(libc_.Lseek(fd, 2, kSeekCur), 7);
  EXPECT_EQ(libc_.Lseek(fd, -1, kSeekEnd), 9);
  EXPECT_EQ(libc_.Lseek(fd, -100, kSeekSet), -1);
  EXPECT_EQ(libc_.verrno(), kEINVAL);
}

TEST_F(VlibTest, BadFdErrors) {
  char buf[4];
  EXPECT_EQ(libc_.Read(42, buf, 4), -1);
  EXPECT_EQ(libc_.verrno(), kEBADF);
  EXPECT_EQ(libc_.Close(42), -1);
  EXPECT_EQ(libc_.Write(42, buf, 4), -1);
}

TEST_F(VlibTest, FdsAreReused) {
  int fd1 = libc_.Open("/data/a", kOWrOnly | kOCreate);
  ASSERT_GE(fd1, 0);
  libc_.Close(fd1);
  int fd2 = libc_.Open("/data/b", kOWrOnly | kOCreate);
  EXPECT_EQ(fd1, fd2);
}

TEST_F(VlibTest, StatAndFstat) {
  fs_.WriteFile("/data/f", "xyz");
  VStat st;
  ASSERT_EQ(libc_.Stat("/data/f", &st), 0);
  EXPECT_EQ(st.size, 3u);
  EXPECT_FALSE(st.is_fifo);
  ASSERT_EQ(libc_.Stat("/data", &st), 0);
  EXPECT_TRUE(st.is_dir);
  EXPECT_EQ(libc_.Stat("/data/none", &st), -1);

  int fd = libc_.Open("/data/f", kORdOnly);
  ASSERT_EQ(libc_.Fstat(fd, &st), 0);
  EXPECT_EQ(st.size, 3u);
}

TEST_F(VlibTest, PipeIsFifo) {
  int fds[2];
  ASSERT_EQ(libc_.Pipe(fds), 0);
  VStat st;
  ASSERT_EQ(libc_.Fstat(fds[0], &st), 0);
  EXPECT_TRUE(st.is_fifo);
  EXPECT_EQ(libc_.Write(fds[1], "ab", 2), 2);
  char buf[4];
  EXPECT_EQ(libc_.Read(fds[0], buf, 4), 2);
}

TEST_F(VlibTest, UnlinkRename) {
  fs_.WriteFile("/data/a", "1");
  EXPECT_EQ(libc_.Rename("/data/a", "/data/b"), 0);
  EXPECT_FALSE(fs_.FileExists("/data/a"));
  EXPECT_TRUE(fs_.FileExists("/data/b"));
  EXPECT_EQ(libc_.Unlink("/data/b"), 0);
  EXPECT_EQ(libc_.Unlink("/data/b"), -1);
  EXPECT_EQ(libc_.verrno(), kENOENT);
}

TEST_F(VlibTest, MkDirRmDir) {
  EXPECT_EQ(libc_.MkDir("/data/sub"), 0);
  EXPECT_EQ(libc_.MkDir("/data/sub"), -1);
  EXPECT_EQ(libc_.verrno(), kEEXIST);
  fs_.WriteFile("/data/sub/f", "x");
  EXPECT_EQ(libc_.RmDir("/data/sub"), -1);
  EXPECT_EQ(libc_.verrno(), kENOTEMPTY);
  fs_.Remove("/data/sub/f");
  EXPECT_EQ(libc_.RmDir("/data/sub"), 0);
}

TEST_F(VlibTest, StreamsRoundTrip) {
  VFile* f = libc_.FOpen("/data/s", "w");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(libc_.FWrite("stream", 6, f), 6u);
  EXPECT_EQ(libc_.FFlush(f), 0);
  EXPECT_EQ(libc_.FClose(f), 0);

  f = libc_.FOpen("/data/s", "r");
  ASSERT_NE(f, nullptr);
  char buf[8];
  EXPECT_EQ(libc_.FRead(buf, 8, f), 6u);
  EXPECT_TRUE(std::memcmp(buf, "stream", 6) == 0);
  EXPECT_EQ(libc_.FRead(buf, 8, f), 0u);
  EXPECT_TRUE(f->eof);
  libc_.FClose(f);
}

TEST_F(VlibTest, FOpenMissingReturnsNull) {
  EXPECT_EQ(libc_.FOpen("/data/none", "r"), nullptr);
  EXPECT_EQ(libc_.verrno(), kENOENT);
  EXPECT_EQ(libc_.FOpen("/data/x", "q"), nullptr);
  EXPECT_EQ(libc_.verrno(), kEINVAL);
}

TEST_F(VlibTest, FwriteNullStreamCrashes) {
  // The PBFT checkpoint bug from Table 1: fwrite on a NULL FILE*.
  EXPECT_THROW(libc_.FWrite("x", 1, nullptr), SimCrash);
}

TEST_F(VlibTest, DirectoryIteration) {
  fs_.WriteFile("/data/one", "");
  fs_.WriteFile("/data/two", "");
  libc_.MkDir("/data/sub");
  VDir* d = libc_.OpenDir("/data");
  ASSERT_NE(d, nullptr);
  std::set<std::string> names;
  while (const char* e = libc_.ReadDir(d)) {
    names.insert(e);
  }
  EXPECT_EQ(names, (std::set<std::string>{"one", "two", "sub"}));
  EXPECT_EQ(libc_.CloseDir(d), 0);
}

TEST_F(VlibTest, OpenDirMissingReturnsNull) {
  EXPECT_EQ(libc_.OpenDir("/nope"), nullptr);
  EXPECT_EQ(libc_.verrno(), kENOENT);
  fs_.WriteFile("/data/f", "");
  EXPECT_EQ(libc_.OpenDir("/data/f"), nullptr);
  EXPECT_EQ(libc_.verrno(), kENOTDIR);
}

TEST_F(VlibTest, ReaddirNullCrashes) {
  // The Git bug from Table 1: readdir(NULL) after a failed opendir.
  EXPECT_THROW(libc_.ReadDir(nullptr), SimCrash);
}

TEST_F(VlibTest, MallocFreeTracking) {
  void* p = libc_.Malloc(64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(libc_.live_allocations(), 1u);
  libc_.Free(p);
  EXPECT_EQ(libc_.live_allocations(), 0u);
  libc_.Free(nullptr);  // no-op, like free(NULL)
}

TEST_F(VlibTest, CallocZeroes) {
  auto* p = static_cast<unsigned char*>(libc_.Calloc(8, 4));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(p[i], 0);
  }
  libc_.Free(p);
}

TEST_F(VlibTest, InvalidFreeAborts) {
  int x;
  EXPECT_THROW(libc_.Free(&x), SimCrash);
}

TEST_F(VlibTest, Environment) {
  EXPECT_EQ(libc_.GetEnv("PATH"), nullptr);
  EXPECT_EQ(libc_.SetEnv("PATH", "/bin", 1), 0);
  EXPECT_STREQ(libc_.GetEnv("PATH"), "/bin");
  EXPECT_EQ(libc_.SetEnv("PATH", "/usr/bin", 0), 0);  // no overwrite
  EXPECT_STREQ(libc_.GetEnv("PATH"), "/bin");
  EXPECT_EQ(libc_.SetEnv("PATH", "/usr/bin", 1), 0);
  EXPECT_STREQ(libc_.GetEnv("PATH"), "/usr/bin");
  EXPECT_EQ(libc_.UnsetEnv("PATH"), 0);
  EXPECT_EQ(libc_.GetEnv("PATH"), nullptr);
  EXPECT_EQ(libc_.SetEnv("BAD=NAME", "x", 1), -1);
  EXPECT_EQ(libc_.verrno(), kEINVAL);
}

TEST_F(VlibTest, MutexLockUnlock) {
  VMutex m{"m", 0};
  EXPECT_EQ(libc_.MutexLock(&m), 0);
  EXPECT_EQ(m.held, 1);
  EXPECT_EQ(libc_.MutexUnlock(&m), 0);
  EXPECT_EQ(m.held, 0);
}

TEST_F(VlibTest, DoubleUnlockCrashes) {
  VMutex m{"m", 0};
  libc_.MutexLock(&m);
  libc_.MutexUnlock(&m);
  EXPECT_THROW(libc_.MutexUnlock(&m), SimCrash);
}

TEST_F(VlibTest, SocketsSendReceive) {
  VirtualLibc peer(&fs_, &net_, "peer");
  int s1 = libc_.Socket();
  int s2 = peer.Socket();
  ASSERT_EQ(libc_.BindSocket(s1, 100), 0);
  ASSERT_EQ(peer.BindSocket(s2, 200), 0);

  EXPECT_EQ(libc_.SendTo(s1, "ping", 4, 200), 4);
  char buf[16];
  int src = -1;
  EXPECT_EQ(peer.RecvFrom(s2, buf, sizeof buf, &src), 4);
  EXPECT_EQ(std::string(buf, 4), "ping");
  EXPECT_EQ(src, 100);
  // Empty queue: EAGAIN (non-blocking).
  EXPECT_EQ(peer.RecvFrom(s2, buf, sizeof buf, &src), -1);
  EXPECT_EQ(peer.verrno(), kEAGAIN);
}

TEST_F(VlibTest, BindConflictFails) {
  int s1 = libc_.Socket();
  int s2 = libc_.Socket();
  ASSERT_EQ(libc_.BindSocket(s1, 7), 0);
  EXPECT_EQ(libc_.BindSocket(s2, 7), -1);
  EXPECT_EQ(libc_.verrno(), kEEXIST);
}

TEST_F(VlibTest, CloseUnbindsSocketPort) {
  int s = libc_.Socket();
  ASSERT_EQ(libc_.BindSocket(s, 55), 0);
  EXPECT_TRUE(net_.IsBound(55));
  libc_.Close(s);
  EXPECT_FALSE(net_.IsBound(55));
}

TEST_F(VlibTest, XmlWriter) {
  VXmlWriter* w = libc_.XmlNewTextWriterDoc();
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(libc_.XmlWriterWriteElement(w, "queries", "42"), 0);
  std::string doc = libc_.XmlFreeTextWriter(w);
  EXPECT_NE(doc.find("<queries>42</queries>"), std::string::npos);
}

TEST_F(VlibTest, Fcntl) {
  int fd = libc_.Open("/data/f", kOWrOnly | kOCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(libc_.Fcntl(fd, kFGetFl, 0), kOWrOnly | kOCreate);
  EXPECT_EQ(libc_.Fcntl(fd, kFSetFl, kONonBlock), 0);
  EXPECT_EQ(libc_.Fcntl(fd, kFGetFl, 0), kONonBlock);
  EXPECT_EQ(libc_.Fcntl(fd, kFGetLk, 0), 0);
  EXPECT_EQ(libc_.Fcntl(fd, 99, 0), -1);
  EXPECT_EQ(libc_.verrno(), kEINVAL);
}

TEST_F(VlibTest, GlobalsAndServices) {
  EXPECT_FALSE(libc_.GetGlobal("thread_count").has_value());
  libc_.SetGlobal("thread_count", 65);
  EXPECT_EQ(libc_.GetGlobal("thread_count").value(), 65);
  int marker;
  libc_.SetService("svc", &marker);
  EXPECT_EQ(libc_.GetService("svc"), &marker);
  EXPECT_EQ(libc_.GetService("other"), nullptr);
}

// --- interposition ------------------------------------------------------------

class DenyAllReads : public Interposer {
 public:
  InjectionDecision OnCall(VirtualLibc* libc, FunctionId function,
                           const ArgSpan& args) override {
    (void)libc;
    (void)args;
    ++calls;
    InjectionDecision d;
    if (FunctionName(function) == "read") {
      d.inject = true;
      d.retval = -1;
      d.errno_value = kEIO;
    }
    return d;
  }
  int calls = 0;
};

TEST_F(VlibTest, InterposerInjectsErrorAndErrno) {
  fs_.WriteFile("/data/f", "content");
  DenyAllReads shim;
  libc_.set_interposer(&shim);
  int fd = libc_.Open("/data/f", kORdOnly);
  ASSERT_GE(fd, 0);
  char buf[8];
  EXPECT_EQ(libc_.Read(fd, buf, 8), -1);
  EXPECT_EQ(libc_.verrno(), kEIO);
  libc_.set_interposer(nullptr);
  EXPECT_EQ(libc_.Read(fd, buf, 8), 7);  // pass-through restored
  EXPECT_GT(shim.calls, 0);
}

TEST_F(VlibTest, InterposerSeesAllBoundaryCalls) {
  DenyAllReads shim;
  libc_.set_interposer(&shim);
  libc_.Malloc(4);
  VMutex m{"m", 0};
  libc_.MutexLock(&m);
  libc_.MutexUnlock(&m);
  libc_.set_interposer(nullptr);
  EXPECT_EQ(shim.calls, 3);
}

class RecursiveTrigger : public Interposer {
 public:
  explicit RecursiveTrigger(VirtualLibc* libc) : libc_(libc) {}
  InjectionDecision OnCall(VirtualLibc*, FunctionId function, const ArgSpan&) override {
    ++depth_;
    EXPECT_EQ(depth_, 1) << "interposer re-entered for " << FunctionName(function);
    // Trigger-issued calls must bypass interception.
    VStat st;
    libc_->Stat("/data", &st);
    --depth_;
    return {};
  }

 private:
  VirtualLibc* libc_;
  int depth_ = 0;
};

TEST_F(VlibTest, TriggerCallsBypassInterception) {
  RecursiveTrigger shim(&libc_);
  libc_.set_interposer(&shim);
  libc_.Malloc(8);
  libc_.set_interposer(nullptr);
}

TEST_F(VlibTest, VnetLossDropsMessages) {
  VirtualNet lossy(42);
  lossy.set_loss_probability(1.0);
  VirtualLibc a(&fs_, &lossy, "a");
  VirtualLibc b(&fs_, &lossy, "b");
  int sa = a.Socket();
  int sb = b.Socket();
  ASSERT_EQ(a.BindSocket(sa, 1), 0);
  ASSERT_EQ(b.BindSocket(sb, 2), 0);
  EXPECT_EQ(a.SendTo(sa, "x", 1, 2), 1);  // fire-and-forget
  char buf[4];
  EXPECT_EQ(b.RecvFrom(sb, buf, 4, nullptr), -1);
  EXPECT_EQ(lossy.dropped_count(), 1u);
}

TEST_F(VlibTest, VnetPartialSendDeliversHonestPrefix) {
  VirtualNet net(9);
  ASSERT_TRUE(net.Bind(1));
  ASSERT_TRUE(net.Bind(2));
  net.set_partial_send_probability(1.0);
  const std::string payload = "abcdef";
  long n = net.Send(1, 2, payload);
  // A strict prefix: the sender sees exactly what a short write() reports.
  ASSERT_GE(n, 1);
  ASSERT_LT(static_cast<size_t>(n), payload.size());
  Datagram d;
  ASSERT_TRUE(net.Receive(2, &d));
  EXPECT_EQ(d.payload, payload.substr(0, static_cast<size_t>(n)));
  EXPECT_EQ(net.partial_send_count(), 1u);
  EXPECT_EQ(net.partial_recv_count(), 0u);
}

TEST_F(VlibTest, VnetPartialRecvTruncatesTheHeadDatagram) {
  VirtualNet net(10);
  ASSERT_TRUE(net.Bind(1));
  ASSERT_TRUE(net.Bind(2));
  const std::string payload = "abcdef";
  ASSERT_EQ(net.Send(1, 2, payload), static_cast<long>(payload.size()));
  net.set_partial_recv_probability(1.0);
  Datagram d;
  ASSERT_TRUE(net.Receive(2, &d));
  // The receiver gets a strict prefix and the remainder is gone -- an honest
  // short read the frame layer must detect (length prefix / CRC).
  ASSERT_GE(d.payload.size(), 1u);
  ASSERT_LT(d.payload.size(), payload.size());
  EXPECT_EQ(d.payload, payload.substr(0, d.payload.size()));
  EXPECT_EQ(net.QueueDepth(2), 0u);
  EXPECT_EQ(net.partial_recv_count(), 1u);
}

TEST_F(VlibTest, VnetTinyPayloadsCannotBeSplit) {
  VirtualNet net(11);
  ASSERT_TRUE(net.Bind(1));
  ASSERT_TRUE(net.Bind(2));
  net.set_partial_send_probability(1.0);
  net.set_partial_recv_probability(1.0);
  ASSERT_EQ(net.Send(1, 2, "a"), 1);
  Datagram d;
  ASSERT_TRUE(net.Receive(2, &d));
  EXPECT_EQ(d.payload, "a");
  EXPECT_EQ(net.partial_send_count(), 0u);
  EXPECT_EQ(net.partial_recv_count(), 0u);
}

TEST_F(VlibTest, VnetPartialSendRoundTripRecoversByResending) {
  // The sender-side recovery discipline the bfs client implements: resend
  // from the reported offset until everything is accepted. The receiver
  // reassembles the prefixes back into the original bytes.
  VirtualNet net(12);
  ASSERT_TRUE(net.Bind(1));
  ASSERT_TRUE(net.Bind(2));
  net.set_partial_send_probability(1.0);
  const std::string payload = "the-quick-brown-fox";
  size_t off = 0;
  int rounds = 0;
  while (off < payload.size() && rounds < 64) {
    long n = net.Send(1, 2, payload.substr(off));
    ASSERT_GE(n, 1);
    off += static_cast<size_t>(n);
    ++rounds;
  }
  ASSERT_EQ(off, payload.size());
  EXPECT_GT(rounds, 1);  // at least one send actually split
  std::string reassembled;
  Datagram d;
  while (net.Receive(2, &d)) {
    reassembled += d.payload;
  }
  EXPECT_EQ(reassembled, payload);
  EXPECT_GE(net.partial_send_count(), 1u);
}

TEST_F(VlibTest, VnetSnapshotRestoreReplaysThePartialFaultStream) {
  VirtualNet net(13);
  ASSERT_TRUE(net.Bind(1));
  ASSERT_TRUE(net.Bind(2));
  net.set_partial_send_probability(0.5);
  net.set_partial_recv_probability(0.5);
  VirtualNet::Snapshot snapshot = net.TakeSnapshot();

  auto run_sequence = [](VirtualNet& n) {
    std::vector<std::pair<long, std::string>> trace;
    for (int i = 0; i < 24; ++i) {
      long sent = n.Send(1, 2, StrFormat("payload-%02d", i));
      Datagram d;
      std::string received = n.Receive(2, &d) ? d.payload : "<empty>";
      trace.emplace_back(sent, received);
    }
    return trace;
  };
  auto first = run_sequence(net);
  uint64_t sends = net.partial_send_count();
  uint64_t recvs = net.partial_recv_count();
  EXPECT_GT(sends + recvs, 0u);

  // Restore rolls the probabilities, the counters, and the RNG back, so the
  // second run replays the exact fault stream -- the property the warm
  // target pool's bit-identity rests on.
  net.Restore(snapshot);
  EXPECT_EQ(net.partial_send_count(), 0u);
  EXPECT_EQ(net.partial_recv_count(), 0u);
  EXPECT_EQ(run_sequence(net), first);
  EXPECT_EQ(net.partial_send_count(), sends);
  EXPECT_EQ(net.partial_recv_count(), recvs);
}

}  // namespace
}  // namespace lfi
