#include <gtest/gtest.h>

#include "coverage/coverage.h"

namespace lfi {
namespace {

TEST(Coverage, StatsCountBlocksAndLines) {
  CoverageMap cov;
  cov.RegisterBlock("a", /*recovery=*/false, 10);
  cov.RegisterBlock("b", /*recovery=*/true, 5);
  cov.RegisterBlock("c", /*recovery=*/true, 3);
  cov.Hit("a");
  cov.Hit("b");

  auto stats = cov.ComputeStats();
  EXPECT_EQ(stats.total_blocks, 3u);
  EXPECT_EQ(stats.covered_blocks, 2u);
  EXPECT_EQ(stats.total_lines, 18);
  EXPECT_EQ(stats.covered_lines, 15);
  EXPECT_EQ(stats.recovery_blocks, 2u);
  EXPECT_EQ(stats.covered_recovery_blocks, 1u);
  EXPECT_EQ(stats.recovery_lines, 8);
  EXPECT_EQ(stats.covered_recovery_lines, 5);
  EXPECT_NEAR(stats.line_coverage(), 100.0 * 15 / 18, 0.01);
  EXPECT_NEAR(stats.recovery_block_coverage(), 50.0, 0.01);
}

TEST(Coverage, DuplicateRegistrationKeepsFirst) {
  CoverageMap cov;
  cov.RegisterBlock("a", true, 7);
  cov.RegisterBlock("a", false, 100);
  auto stats = cov.ComputeStats();
  EXPECT_EQ(stats.total_blocks, 1u);
  EXPECT_EQ(stats.recovery_lines, 7);
}

TEST(Coverage, UnknownHitAutoRegisters) {
  CoverageMap cov;
  cov.Hit("ghost");
  auto stats = cov.ComputeStats();
  EXPECT_EQ(stats.total_blocks, 1u);
  EXPECT_EQ(stats.covered_blocks, 1u);
}

TEST(Coverage, ResetHitsKeepsRegistration) {
  CoverageMap cov;
  cov.RegisterBlock("a", true, 4);
  cov.Hit("a");
  cov.ResetHits();
  auto stats = cov.ComputeStats();
  EXPECT_EQ(stats.total_blocks, 1u);
  EXPECT_EQ(stats.covered_blocks, 0u);
}

TEST(Coverage, AbsorbHitsAccumulates) {
  CoverageMap master;
  master.RegisterBlock("a", true, 4);
  master.RegisterBlock("b", true, 4);

  CoverageMap run1;
  run1.Hit("a");
  CoverageMap run2;
  run2.Hit("b");
  master.AbsorbHits(run1);
  master.AbsorbHits(run2);

  auto stats = master.ComputeStats();
  EXPECT_EQ(stats.covered_recovery_blocks, 2u);
  EXPECT_TRUE(master.WasHit("a"));
  EXPECT_TRUE(master.WasHit("b"));
}

TEST(Coverage, NewlyCoveredVersusBaseline) {
  CoverageMap baseline;
  baseline.RegisterBlock("a", false, 1);
  baseline.Hit("a");

  CoverageMap with_lfi;
  with_lfi.RegisterBlock("a", false, 1);
  with_lfi.RegisterBlock("b", true, 1);
  with_lfi.Hit("a");
  with_lfi.Hit("b");

  auto fresh = with_lfi.NewlyCoveredVersus(baseline);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], "b");
}

TEST(Coverage, EmptyMapStats) {
  CoverageMap cov;
  auto stats = cov.ComputeStats();
  EXPECT_EQ(stats.line_coverage(), 0.0);
  EXPECT_EQ(stats.recovery_block_coverage(), 0.0);
}

}  // namespace
}  // namespace lfi
