// Warm-instance job execution (core/warm_pool.h, apps/common/warm_targets.h):
// virtual-environment snapshots round-trip bit-exactly, a warm target serves
// repeated jobs indistinguishably from cold construct-run-destroy execution,
// the pool survives crashed jobs and discards non-restorable instances, and
// -- the acceptance bar -- whole campaigns run warm produce bugs, coverage,
// and journal *bytes* identical to the --cold-start ablation at any worker
// or shard count. Also pins the streamed ScenarioFingerprint to the SHA-1 of
// the materialized XML it replaced.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "apps/common/warm_targets.h"
#include "core/campaign_engine.h"
#include "core/scenario.h"
#include "core/warm_pool.h"
#include "util/sha1.h"
#include "util/string_util.h"
#include "vlib/vfs.h"
#include "vlib/virtual_libc.h"
#include "vlib/vnet.h"

namespace lfi {
namespace {

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void ExpectSameOutcome(const CampaignOutcome& a, const CampaignOutcome& b) {
  ASSERT_EQ(a.bugs.size(), b.bugs.size());
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].system, b.bugs[i].system) << i;
    EXPECT_EQ(a.bugs[i].kind, b.bugs[i].kind) << i;
    EXPECT_EQ(a.bugs[i].where, b.bugs[i].where) << i;
    EXPECT_EQ(a.bugs[i].injected, b.bugs[i].injected) << i;
  }
  CoverageMap::Stats sa = a.coverage.ComputeStats();
  CoverageMap::Stats sb = b.coverage.ComputeStats();
  EXPECT_EQ(sa.covered_recovery_blocks, sb.covered_recovery_blocks);
  EXPECT_EQ(sa.covered_blocks, sb.covered_blocks);
  EXPECT_EQ(a.scenarios_run, b.scenarios_run);
}

void ExpectSameResult(const JobResult& warm, const JobResult& cold) {
  ASSERT_EQ(warm.bugs.size(), cold.bugs.size());
  for (size_t i = 0; i < warm.bugs.size(); ++i) {
    EXPECT_EQ(warm.bugs[i], cold.bugs[i]) << i;
  }
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(warm.injections, cold.injections);
  CoverageMap::Stats sw = warm.coverage.ComputeStats();
  CoverageMap::Stats sc = cold.coverage.ComputeStats();
  EXPECT_EQ(sw.covered_blocks, sc.covered_blocks);
  EXPECT_EQ(sw.covered_recovery_blocks, sc.covered_recovery_blocks);
}

// --- virtual-environment snapshots ------------------------------------------

TEST(VfsSnapshot, RestoreRollsEveryMutationBack) {
  VirtualFs fs;
  fs.MkDir("/a");
  fs.MkDir("/a/b");
  fs.WriteFile("/a/b/file", "payload");
  fs.WriteFile("/a/fifo", "", /*is_fifo=*/true);
  VirtualFs::Snapshot snapshot = fs.TakeSnapshot();

  fs.WriteFile("/a/b/file", "clobbered");
  fs.WriteFile("/a/new", "post-snapshot");
  fs.Remove("/a/fifo");
  fs.MkDir("/post");

  fs.Restore(snapshot);
  ASSERT_NE(fs.GetFile("/a/b/file"), nullptr);
  EXPECT_EQ(fs.GetFile("/a/b/file")->data, "payload");
  EXPECT_FALSE(fs.FileExists("/a/new"));
  ASSERT_NE(fs.GetFile("/a/fifo"), nullptr);
  EXPECT_TRUE(fs.GetFile("/a/fifo")->is_fifo);
  EXPECT_FALSE(fs.DirExists("/post"));
  EXPECT_TRUE(fs.DirExists("/a/b"));
  EXPECT_EQ(fs.file_count(), 2u);
}

TEST(VnetSnapshot, RestoreRollsQueuesCountersAndLossStreamBack) {
  VirtualNet net(/*seed=*/42);
  net.Bind(1);
  net.Bind(2);
  net.Send(1, 2, "queued");
  net.set_loss_probability(0.5);
  // Burn a few RNG draws so the snapshot captures mid-stream state.
  for (int i = 0; i < 5; ++i) {
    net.Send(1, 2, "warmup");
  }
  VirtualNet::Snapshot snapshot = net.TakeSnapshot();

  // Record the loss decisions the post-snapshot stream makes...
  std::vector<long> accepted;
  for (int i = 0; i < 16; ++i) {
    accepted.push_back(net.Send(1, 2, "probe"));
  }
  uint64_t delivered = net.delivered_count();
  uint64_t dropped = net.dropped_count();
  net.Bind(3);
  net.Unbind(1);

  // ...then restore and replay: bindings, queues, counters, and the loss RNG
  // must all pick up exactly where the snapshot left them.
  net.Restore(snapshot);
  EXPECT_TRUE(net.IsBound(1));
  EXPECT_FALSE(net.IsBound(3));
  std::vector<long> replayed;
  for (int i = 0; i < 16; ++i) {
    replayed.push_back(net.Send(1, 2, "probe"));
  }
  EXPECT_EQ(replayed, accepted);
  EXPECT_EQ(net.delivered_count(), delivered);
  EXPECT_EQ(net.dropped_count(), dropped);
}

TEST(LibcSnapshot, RestoreFreesPostSnapshotStateAndResetsValues) {
  VirtualFs fs;
  VirtualNet net;
  VirtualLibc libc(&fs, &net, "test");
  fs.MkDir("/d");
  void* setup_block = libc.Malloc(16);
  ASSERT_NE(setup_block, nullptr);
  libc.SetEnv("SETUP", "yes", 1);
  VirtualLibc::Snapshot snapshot = libc.TakeSnapshot();
  size_t live = libc.live_allocations();

  void* job_block = libc.Malloc(32);
  ASSERT_NE(job_block, nullptr);
  libc.SetEnv("JOB", "leaked", 1);
  libc.set_verrno(7);

  ASSERT_TRUE(libc.Restore(snapshot));
  EXPECT_EQ(libc.live_allocations(), live);
  EXPECT_EQ(libc.GetEnv("JOB"), nullptr);
  ASSERT_NE(libc.GetEnv("SETUP"), nullptr);
  EXPECT_STREQ(libc.GetEnv("SETUP"), "yes");
  EXPECT_EQ(libc.verrno(), 0);
  // The setup-era block is still live and usable after restore.
  libc.Free(setup_block);
}

TEST(LibcSnapshot, ReleasedSetupResourceMakesRestoreRefuse) {
  VirtualFs fs;
  VirtualNet net;
  VirtualLibc libc(&fs, &net, "test");
  void* setup_block = libc.Malloc(16);
  VirtualLibc::Snapshot snapshot = libc.TakeSnapshot();

  // The "job" frees a setup-era allocation: that address may be reused by the
  // host allocator, so the snapshot is non-restorable. Restore must refuse
  // (the pool then rebuilds cold) instead of resurrecting a dangling pointer.
  libc.Free(setup_block);
  EXPECT_FALSE(libc.Restore(snapshot));
}

// --- the streamed scenario fingerprint --------------------------------------

TEST(ScenarioTest, FingerprintMatchesMaterializedXml) {
  // Hand-built scenarios (the generators the campaigns actually use)...
  std::vector<Scenario> scenarios;
  scenarios.push_back(MakeCallCountScenario("malloc", 3, 0, 12));
  scenarios.push_back(MakeRandomScenario("read", -1, 5, 0.1, 99));
  // ...plus a parsed one exercising <args> subtrees, conjunction, and negate.
  std::string error;
  auto parsed = Scenario::Parse(
      "<scenario>"
      "<trigger id=\"t1\" class=\"CallCountTrigger\"><args><count>3</count></args></trigger>"
      "<trigger id=\"t2\" class=\"RandomTrigger\"/>"
      "<function name=\"malloc\" argc=\"1\" return=\"0\" errno=\"12\">"
      "<reftrigger ref=\"t1\"/><reftrigger ref=\"t2\" negate=\"true\"/></function>"
      "<function name=\"fwrite\" argc=\"4\" return=\"unused\">"
      "<reftrigger ref=\"t2\"/></function>"
      "</scenario>",
      &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  scenarios.push_back(*parsed);
  scenarios.emplace_back();  // the empty scenario

  // The streamed digest must equal the SHA-1 of the materialized canonical
  // XML -- the definition it replaced -- or sharded campaigns would deal jobs
  // to different shards than their journals recorded.
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(ScenarioFingerprint(scenarios[i]), Sha1::HexDigest(scenarios[i].ToXml()))
        << "scenario " << i;
  }
}

// --- warm targets against their cold runners --------------------------------

TEST(WarmTarget, GitServesRepeatedJobsIdenticallyToColdRuns) {
  CampaignJob clean;
  clean.label = "clean run";
  clean.seed = 3;
  CampaignJob crash;  // opendir #1 = NULL: the readdir SIGSEGV bug
  crash.scenario = MakeCallCountScenario("opendir", 1, 0, 0);
  crash.label = "opendir=NULL";
  crash.seed = 3;
  JobResult cold_clean = RunGitJob(clean);
  JobResult cold_crash = RunGitJob(crash);
  ASSERT_FALSE(cold_crash.bugs.empty());

  auto target = GitWarmFactory()();
  // Interleave crashing and clean jobs on one instance: a crashed job must
  // leave no trace a later job can observe.
  for (int round = 0; round < 3; ++round) {
    ExpectSameResult(target->Run(crash), cold_crash);
    ASSERT_TRUE(target->Reset()) << "round " << round;
    ExpectSameResult(target->Run(clean), cold_clean);
    ASSERT_TRUE(target->Reset()) << "round " << round;
  }
}

TEST(WarmTarget, AllSystemsRoundTripACleanJob) {
  CampaignJob job;
  job.label = "clean run";
  job.seed = 5;
  struct Case {
    const char* name;
    WarmPool::Factory factory;
    JobResult (*cold)(const CampaignJob&);
  };
  std::vector<Case> cases;
  cases.push_back({"git", GitWarmFactory(), RunGitJob});
  cases.push_back({"mysql", MysqlWarmFactory(), RunMysqlJob});
  cases.push_back({"bind", BindWarmFactory(), RunBindJob});
  cases.push_back({"bind-dst", BindDstWarmFactory(), RunBindDstJob});
  cases.push_back({"pbft", PbftWarmFactory(8, 2000), RunPbftJob});
  cases.push_back({"pbft-dist", PbftDistributedWarmFactory(), RunPbftDistributedJob});
  for (Case& c : cases) {
    SCOPED_TRACE(c.name);
    JobResult cold = c.cold(job);
    auto target = c.factory();
    ExpectSameResult(target->Run(job), cold);
    ASSERT_TRUE(target->Reset());
    ExpectSameResult(target->Run(job), cold);
    ASSERT_TRUE(target->Reset());
  }
}

// --- pool discipline ---------------------------------------------------------

class StubTarget : public WarmTarget {
 public:
  StubTarget(int id, bool reset_ok) : id_(id), reset_ok_(reset_ok) {}
  JobResult Run(const CampaignJob& job) override {
    (void)job;
    JobResult result;
    result.fingerprint = StrFormat("instance-%d", id_);
    return result;
  }
  bool Reset() override { return reset_ok_; }

 private:
  int id_;
  bool reset_ok_;
};

TEST(WarmPoolDiscipline, SequentialJobsReuseOneInstance) {
  int built = 0;
  WarmPool pool([&] { return std::make_unique<StubTarget>(built++, /*reset_ok=*/true); });
  CampaignJob job;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pool.RunJob(job).fingerprint, "instance-0");
  }
  WarmPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.runs, 5u);
  EXPECT_EQ(stats.resets, 5u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(WarmPoolDiscipline, FailedResetDropsTheInstanceAndRebuildsCold) {
  int built = 0;
  WarmPool pool([&] { return std::make_unique<StubTarget>(built++, /*reset_ok=*/false); });
  CampaignJob job;
  // Every job still runs (on a fresh cold build) -- a non-restorable
  // instance degrades performance, never correctness.
  EXPECT_EQ(pool.RunJob(job).fingerprint, "instance-0");
  EXPECT_EQ(pool.RunJob(job).fingerprint, "instance-1");
  EXPECT_EQ(pool.RunJob(job).fingerprint, "instance-2");
  WarmPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.builds, 3u);
  EXPECT_EQ(stats.runs, 3u);
  EXPECT_EQ(stats.resets, 0u);
  EXPECT_EQ(stats.dropped, 3u);
}

// --- the acceptance bar: warm campaigns == cold campaigns, byte for byte ----

CampaignSpec ExploreSpec(const std::string& system, const std::string& journal,
                         int workers, bool cold_start) {
  CampaignSpec spec;
  spec.system = system;
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kExhaustive;
  spec.budget = 24;
  spec.seed = 7;
  spec.workers = workers;
  spec.journal_path = journal;
  spec.cold_start = cold_start;
  return spec;
}

std::optional<CampaignOutcome> RunDriver(CampaignSpec spec, std::string* error) {
  CampaignDriver driver(std::move(spec));
  return driver.Run(error);
}

TEST(WarmCampaign, ExploreMatchesColdStartByteForByteOnAllSystems) {
  for (const char* system : {"git", "mysql", "bind", "pbft"}) {
    SCOPED_TRACE(system);
    std::string error;
    std::string cold_path = TempPath(StrFormat("warm_%s_cold.lfij", system).c_str());
    std::remove(cold_path.c_str());
    auto cold = RunDriver(ExploreSpec(system, cold_path, 1, /*cold_start=*/true), &error);
    ASSERT_TRUE(cold.has_value()) << error;
    std::string cold_bytes = ReadFile(cold_path);

    for (int workers : {1, 2, 8}) {
      std::string path =
          TempPath(StrFormat("warm_%s_w%d.lfij", system, workers).c_str());
      std::remove(path.c_str());
      auto warm = RunDriver(ExploreSpec(system, path, workers, /*cold_start=*/false),
                            &error);
      ASSERT_TRUE(warm.has_value()) << error;
      ExpectSameOutcome(*cold, *warm);
      EXPECT_EQ(ReadFile(path), cold_bytes) << "workers=" << workers;
    }
  }
}

TEST(WarmCampaign, Table1MatchesColdStartIncludingSelfContainedJobs) {
  // bind and pbft exercise the self-contained job.explore runners (the
  // dst_lib_init malloc sweep and the distributed fuzz phase), which plug
  // into their own warm pools.
  for (const char* system : {"bind", "pbft"}) {
    SCOPED_TRACE(system);
    std::string error;
    std::string cold_path = TempPath(StrFormat("warm_t1_%s_cold.lfij", system).c_str());
    std::string warm_path = TempPath(StrFormat("warm_t1_%s_warm.lfij", system).c_str());
    std::remove(cold_path.c_str());
    std::remove(warm_path.c_str());
    CampaignSpec spec;
    spec.system = system;
    spec.mode = CampaignMode::kTable1;
    spec.journal_path = cold_path;
    spec.cold_start = true;
    auto cold = RunDriver(spec, &error);
    ASSERT_TRUE(cold.has_value()) << error;
    spec.journal_path = warm_path;
    spec.cold_start = false;
    spec.workers = 4;
    auto warm = RunDriver(spec, &error);
    ASSERT_TRUE(warm.has_value()) << error;
    ExpectSameOutcome(*cold, *warm);
    EXPECT_EQ(ReadFile(warm_path), ReadFile(cold_path));
  }
}

TEST(WarmCampaign, EpochShardedExploreMatchesColdStart) {
  // The epoch protocol's 4-shard orchestration (spawn, merge, reseed) on top
  // of warm pools: every shard child builds its own pools, and the merged
  // journal still byte-compares against the cold single-process run.
  auto epoch_spec = [](const std::string& journal, size_t shards, bool cold_start) {
    CampaignSpec spec;
    spec.system = "pbft";
    spec.mode = CampaignMode::kExplore;
    spec.strategy = ExploreStrategy::kCoverage;
    spec.budget = 32;
    spec.seed = 7;
    spec.epoch_len = 2;
    spec.journal_path = journal;
    spec.shard_count = shards;
    spec.cold_start = cold_start;
    return spec;
  };
  auto remove_artifacts = [](const std::string& journal, size_t shards) {
    std::remove(journal.c_str());
    for (size_t epoch = 0; epoch < 8; ++epoch) {
      std::remove((journal + StrFormat(".epoch%zu.frontier", epoch)).c_str());
      for (size_t shard = 0; shard < shards; ++shard) {
        std::remove((journal + StrFormat(".epoch%zu.shard%zu", epoch, shard)).c_str());
      }
    }
  };
  std::string error;
  std::string cold_path = TempPath("warm_epoch_cold.lfij");
  remove_artifacts(cold_path, 0);
  auto cold = RunDriver(epoch_spec(cold_path, 1, /*cold_start=*/true), &error);
  ASSERT_TRUE(cold.has_value()) << error;
  std::string cold_bytes = ReadFile(cold_path);

  std::string warm_path = TempPath("warm_epoch_4shard.lfij");
  remove_artifacts(warm_path, 4);
  auto warm = RunDriver(epoch_spec(warm_path, 4, /*cold_start=*/false), &error);
  ASSERT_TRUE(warm.has_value()) << error;
  ExpectSameOutcome(*cold, *warm);
  EXPECT_EQ(ReadFile(warm_path), cold_bytes);
}

TEST(WarmCampaign, ColdStartSurvivesTheSpecWireFormat) {
  // Shard children receive their spec over the XML wire; the ablation knob
  // must ride along or a child would silently run warm under --cold-start.
  CampaignSpec spec = ExploreSpec("git", "j.lfij", 1, /*cold_start=*/true);
  std::string error;
  auto parsed = CampaignSpec::Parse(spec.ToXml(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->cold_start);
  EXPECT_TRUE(*parsed == spec);
  // But it is execution environment, not campaign identity: journals recorded
  // warm and cold must resume interchangeably.
  CampaignSpec cold = spec;
  CampaignSpec warm = spec;
  warm.cold_start = false;
  EXPECT_TRUE(cold.ToJournalMeta() == warm.ToJournalMeta());
}

}  // namespace
}  // namespace lfi
