// The unified campaign API: CampaignSpec round trips (XML wire format and
// journal-header identity), spec validation, the one name-table, ShardSource
// dealing, and the multi-process acceptance bar -- merging N shard journals
// in any input order yields a bit-identical merged journal (and the same bug
// list and coverage as the unsharded run at equal total budget) that resumes
// cleanly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common/bug_campaign.h"
#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "core/exploration.h"
#include "core/journal.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace lfi {
namespace {

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// The driver refuses to clobber existing artifacts, so tests must clear a
// previous run's journal plus its per-shard files to stay re-runnable.
void RemoveCampaignArtifacts(const std::string& journal_path, size_t shards = 0) {
  std::remove(journal_path.c_str());
  for (size_t i = 0; i < shards; ++i) {
    std::remove((journal_path + StrFormat(".shard%zu", i)).c_str());
  }
}

CampaignSpec RandomSpec(Rng& rng) {
  CampaignSpec spec;
  const auto& systems = CampaignSystemNames();
  spec.system = systems[rng.NextBelow(systems.size())];
  spec.mode = rng.Chance(0.5) ? CampaignMode::kExplore : CampaignMode::kTable1;
  switch (rng.NextBelow(3)) {
    case 0:
      spec.strategy = ExploreStrategy::kExhaustive;
      break;
    case 1:
      spec.strategy = ExploreStrategy::kRandom;
      break;
    default:
      spec.strategy = ExploreStrategy::kCoverage;
      break;
  }
  spec.exhaustive = rng.Chance(0.5);
  spec.budget = rng.NextBelow(1000);
  spec.seed = rng.Next();  // full-range: exercises the hex encoding
  spec.workers = static_cast<int>(rng.NextBelow(9));
  if (rng.Chance(0.5)) {
    spec.journal_path = StrFormat("journal with \"quotes\" & <angles> %zu.xml",
                                  rng.NextBelow(100));
  }
  spec.resume = rng.Chance(0.3);
  if (rng.Chance(0.4)) {
    spec.shard_count = 2 + rng.NextBelow(7);
    if (rng.Chance(0.5)) {
      spec.shard_index = rng.NextBelow(spec.shard_count);
    }
  }
  spec.json = rng.Chance(0.5);
  if (rng.Chance(0.2)) {
    spec.replay_selector = StrFormat("%zu:%zu", rng.NextBelow(20), rng.NextBelow(4));
  }
  spec.abort_after_records = rng.NextBelow(10);
  return spec;
}

TEST(CampaignSpec, XmlRoundTripsAndIsCanonical) {
  Rng rng(2027);
  for (int iteration = 0; iteration < 200; ++iteration) {
    CampaignSpec spec = RandomSpec(rng);
    // Strategy only serializes in explore mode; normalize so == holds.
    if (spec.mode != CampaignMode::kExplore) {
      spec.strategy = ExploreStrategy::kExhaustive;
    }
    std::string xml = spec.ToXml();
    std::string error;
    auto parsed = CampaignSpec::Parse(xml, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << xml;
    EXPECT_TRUE(*parsed == spec) << xml;
    EXPECT_EQ(parsed->ToXml(), xml);  // canonical: second trip is byte-stable
  }
}

TEST(CampaignSpec, DefaultSpecSerializesMinimal) {
  CampaignSpec spec;
  spec.system = "pbft";
  EXPECT_EQ(spec.ToXml(), "<campaignspec system=\"pbft\" mode=\"explore\" "
                          "strategy=\"exhaustive\" />\n");
}

TEST(CampaignSpec, JournalMetaRoundTripsTheIdentity) {
  Rng rng(99);
  for (int iteration = 0; iteration < 100; ++iteration) {
    CampaignSpec spec = RandomSpec(rng);
    // The journal identity covers exactly what resume needs: mode, system,
    // strategy/budget/seed (explore) or exhaustive (table1), and the shard
    // coordinates. Environment fields are deliberately excluded.
    auto back = CampaignSpec::FromJournalMeta(spec.ToJournalMeta());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->mode, spec.mode);
    EXPECT_EQ(back->system, spec.system);
    EXPECT_EQ(back->shard_index, spec.shard_index);
    if (spec.shard_index != CampaignSpec::kNoShard) {
      EXPECT_EQ(back->shard_count, spec.shard_count);
    }
    if (spec.mode == CampaignMode::kExplore) {
      EXPECT_EQ(back->strategy, spec.strategy);
      EXPECT_EQ(back->budget, spec.budget);
      EXPECT_EQ(back->seed, spec.seed);
    } else {
      EXPECT_EQ(back->exhaustive, spec.exhaustive);
    }
  }
}

TEST(CampaignSpec, NameTablesRoundTrip) {
  for (CampaignMode mode : {CampaignMode::kTable1, CampaignMode::kExplore,
                            CampaignMode::kResume, CampaignMode::kReplay}) {
    EXPECT_EQ(ParseCampaignMode(CampaignModeName(mode)), mode);
  }
  // The historical journal-header spelling of table1 mode stays parseable.
  EXPECT_EQ(ParseCampaignMode("campaign"), CampaignMode::kTable1);
  EXPECT_FALSE(ParseCampaignMode("bogus").has_value());
  for (ExploreStrategy strategy : {ExploreStrategy::kExhaustive, ExploreStrategy::kRandom,
                                   ExploreStrategy::kCoverage}) {
    EXPECT_EQ(ParseExploreStrategy(ExploreStrategyName(strategy)), strategy);
  }
  EXPECT_FALSE(ParseExploreStrategy("bogus").has_value());
  for (const std::string& system : CampaignSystemNames()) {
    EXPECT_TRUE(IsCampaignSystem(system));
  }
  EXPECT_FALSE(IsCampaignSystem("all"));
  EXPECT_FALSE(IsCampaignSystem("httpd"));
}

TEST(CampaignSpec, ValidateRejectsUnrunnableSpecs) {
  auto spec = [] {
    CampaignSpec s;
    s.system = "pbft";
    s.mode = CampaignMode::kExplore;
    s.journal_path = "j.xml";
    return s;
  };
  EXPECT_EQ(spec().Validate(), "");

  CampaignSpec s = spec();
  s.system = "nope";
  EXPECT_NE(s.Validate(), "");

  s = spec();  // coverage strategy cannot be dealt across processes
  s.strategy = ExploreStrategy::kCoverage;
  s.shard_count = 4;
  EXPECT_NE(s.Validate(), "");
  s.strategy = ExploreStrategy::kRandom;
  EXPECT_EQ(s.Validate(), "");

  s = spec();  // sharding needs the journal artifacts
  s.shard_count = 4;
  s.journal_path.clear();
  EXPECT_NE(s.Validate(), "");

  s = spec();  // shard index in range
  s.shard_count = 4;
  s.shard_index = 4;
  EXPECT_NE(s.Validate(), "");

  s = spec();  // table1 sharding requires the cutoff-free variant
  s.mode = CampaignMode::kTable1;
  s.shard_count = 2;
  EXPECT_NE(s.Validate(), "");
  s.exhaustive = true;
  EXPECT_EQ(s.Validate(), "");

  s = CampaignSpec();  // resume/replay operate on a journal
  s.mode = CampaignMode::kResume;
  EXPECT_NE(s.Validate(), "");
  s.journal_path = "j.xml";
  EXPECT_EQ(s.Validate(), "");

  s = CampaignSpec();  // "all" only in table1 mode, never journaled
  s.system = "all";
  s.mode = CampaignMode::kTable1;
  EXPECT_EQ(s.Validate(), "");
  s.journal_path = "j.xml";
  EXPECT_NE(s.Validate(), "");
  s.journal_path.clear();
  s.mode = CampaignMode::kExplore;
  EXPECT_NE(s.Validate(), "");
}

// --- ShardSource dealing ----------------------------------------------------

TEST(ShardSource, DealsByFingerprintIntoADisjointCover) {
  EnsureStockTriggersRegistered();
  std::vector<CampaignJob> jobs;
  for (uint64_t i = 1; i <= 40; ++i) {
    CampaignJob job;
    job.scenario = MakeCallCountScenario("read", i, -1, 5);
    job.label = StrFormat("job-%llu", (unsigned long long)i);
    job.seed = i;
    jobs.push_back(std::move(job));
  }

  constexpr size_t kShards = 4;
  std::vector<size_t> stream_indices;
  size_t total = 0;
  for (size_t shard = 0; shard < kShards; ++shard) {
    ExhaustiveSource inner(jobs);
    ShardSource source(inner, shard, kShards);
    EXPECT_EQ(source.stream_size(), jobs.size());
    std::vector<CampaignJob> dealt = source.NextBatch(jobs.size());
    EXPECT_EQ(dealt.size(), source.size());
    total += dealt.size();
    for (const CampaignJob& job : dealt) {
      ASSERT_NE(job.stream_index, CampaignJob::kNoStreamIndex);
      // The stamped position refers back to the unsharded stream.
      EXPECT_TRUE(job.scenario == jobs[job.stream_index].scenario);
      EXPECT_EQ(job.label, jobs[job.stream_index].label);
      // Dealing is content-keyed: the assignment recomputes from the
      // scenario alone.
      EXPECT_EQ(ScenarioShard(job.scenario, kShards), shard);
      stream_indices.push_back(job.stream_index);
    }
  }
  // Union of the shards is exactly the stream, each job exactly once.
  EXPECT_EQ(total, jobs.size());
  std::sort(stream_indices.begin(), stream_indices.end());
  for (size_t i = 0; i < stream_indices.size(); ++i) {
    EXPECT_EQ(stream_indices[i], i);
  }

  // Feedback-driven sources cannot be dealt; out-of-range coordinates throw.
  ExhaustiveSource inner(jobs);
  EXPECT_THROW(ShardSource(inner, 4, 4), std::invalid_argument);
}

// --- the multi-process acceptance bar ---------------------------------------

// Runs the pbft exploration single-process and as 4 in-process shards, then
// checks the satellite property: merging the shard journals in ANY input
// order yields a bit-identical merged journal -- which is also byte-identical
// to the single-process journal -- with the same bug list and coverage at
// equal total budget, and the merged journal resumes cleanly.
TEST(ShardedCampaign, MergeIsOrderInvariantAndMatchesSingleProcess) {
  EnsureStockTriggersRegistered();
  std::string single_path = TempPath("spec_single.xml");
  std::string merged_path = TempPath("spec_merged.xml");
  RemoveCampaignArtifacts(single_path);
  RemoveCampaignArtifacts(merged_path, /*shards=*/4);

  CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kRandom;
  spec.budget = 12;
  spec.seed = 5;

  CampaignSpec single = spec;
  single.journal_path = single_path;
  std::string error;
  auto single_outcome = CampaignDriver(single).Run(&error);
  ASSERT_TRUE(single_outcome.has_value()) << error;

  constexpr size_t kShards = 4;
  CampaignSpec sharded = spec;
  sharded.journal_path = merged_path;
  sharded.shard_count = kShards;
  auto sharded_outcome = CampaignDriver(sharded).Run(&error);  // in-process shards
  ASSERT_TRUE(sharded_outcome.has_value()) << error;
  ASSERT_EQ(sharded_outcome->shards.size(), kShards);

  // Equal total budget, same bugs, same coverage, byte-identical journal.
  EXPECT_EQ(sharded_outcome->scenarios_run, single_outcome->scenarios_run);
  EXPECT_EQ(sharded_outcome->bugs, single_outcome->bugs);
  EXPECT_EQ(sharded_outcome->coverage.hits(), single_outcome->coverage.hits());
  std::string single_bytes = ReadFile(single_path);
  EXPECT_EQ(ReadFile(merged_path), single_bytes);

  // Every input permutation merges to the same bytes.
  std::vector<std::string> inputs;
  size_t shard_records = 0;
  for (const MergeInputStats& shard : sharded_outcome->shards) {
    inputs.push_back(shard.path);
    shard_records += shard.records;
  }
  EXPECT_EQ(shard_records, single_outcome->scenarios_run);
  std::sort(inputs.begin(), inputs.end());
  int permutation = 0;
  do {
    std::string out_path = TempPath(StrFormat("spec_perm_%d.xml", permutation).c_str());
    std::remove(out_path.c_str());
    auto merged = MergeJournals(inputs, out_path, &error);
    ASSERT_TRUE(merged.has_value()) << error;
    EXPECT_EQ(merged->bugs, single_outcome->bugs);
    EXPECT_EQ(ReadFile(out_path), single_bytes) << "permutation " << permutation;
    ++permutation;
  } while (std::next_permutation(inputs.begin(), inputs.end()) && permutation < 6);
  EXPECT_GE(permutation, 2);

  // The merged journal is a valid resumable campaign: resume replays it to
  // the same result without re-executing (and without touching the bytes).
  auto resumed = ResumeCampaign(merged_path, /*workers=*/2, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  EXPECT_EQ(resumed->bugs, single_outcome->bugs);
  EXPECT_EQ(resumed->coverage.hits(), single_outcome->coverage.hits());
  EXPECT_EQ(resumed->scenarios_run, single_outcome->scenarios_run);
  EXPECT_EQ(ReadFile(merged_path), single_bytes);

  // A killed orchestration leaves finished shard journals behind; re-running
  // the same spec resumes them from disk (completed shards replay entirely)
  // instead of demanding their deletion, and still merges byte-identically.
  std::remove(merged_path.c_str());
  auto rerun_outcome = CampaignDriver(sharded).Run(&error);
  ASSERT_TRUE(rerun_outcome.has_value()) << error;
  EXPECT_EQ(rerun_outcome->bugs, single_outcome->bugs);
  EXPECT_EQ(ReadFile(merged_path), single_bytes);
}

// shards > scenarios: the empty shards still write valid header-only
// journals (the satellite regression) and the merge still reconstructs the
// single-process campaign.
TEST(ShardedCampaign, MoreShardsThanScenariosLeavesValidEmptyShardJournals) {
  EnsureStockTriggersRegistered();
  std::string single_path = TempPath("spec_tiny_single.xml");
  std::string merged_path = TempPath("spec_tiny_merged.xml");
  RemoveCampaignArtifacts(single_path);
  RemoveCampaignArtifacts(merged_path, /*shards=*/8);

  CampaignSpec spec;
  spec.system = "git";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kRandom;
  spec.budget = 3;
  spec.seed = 7;

  CampaignSpec single = spec;
  single.journal_path = single_path;
  std::string error;
  auto single_outcome = CampaignDriver(single).Run(&error);
  ASSERT_TRUE(single_outcome.has_value()) << error;
  ASSERT_EQ(single_outcome->scenarios_run, 3u);

  CampaignSpec sharded = spec;
  sharded.journal_path = merged_path;
  sharded.shard_count = 8;  // > 3 scenarios: at least five shards are empty
  auto sharded_outcome = CampaignDriver(sharded).Run(&error);
  ASSERT_TRUE(sharded_outcome.has_value()) << error;

  size_t empty_shards = 0;
  for (const MergeInputStats& shard : sharded_outcome->shards) {
    if (shard.records != 0) {
      continue;
    }
    ++empty_shards;
    // The empty shard's artifact is a loadable header-only journal whose
    // header still names the campaign (and its shard coordinates).
    auto journal = CampaignJournal::Load(shard.path, &error);
    ASSERT_TRUE(journal.has_value()) << shard.path << ": " << error;
    EXPECT_TRUE(journal->records().empty());
    EXPECT_EQ(journal->Meta("system"), "git");
    EXPECT_EQ(journal->Meta("shards"), "8");
  }
  EXPECT_GE(empty_shards, 5u);
  EXPECT_EQ(sharded_outcome->bugs, single_outcome->bugs);
  EXPECT_EQ(ReadFile(merged_path), ReadFile(single_path));
}

// Merging journals from different campaigns must be refused, not silently
// interleaved.
TEST(ShardedCampaign, MergeRejectsMismatchedCampaignIdentity) {
  EnsureStockTriggersRegistered();
  std::string a_path = TempPath("spec_merge_a.xml");
  std::string b_path = TempPath("spec_merge_b.xml");
  std::string out_path = TempPath("spec_merge_out.xml");
  std::remove(a_path.c_str());
  std::remove(b_path.c_str());
  std::remove(out_path.c_str());

  CampaignSpec spec;
  spec.system = "git";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kRandom;
  spec.budget = 2;
  spec.seed = 1;
  spec.journal_path = a_path;
  std::string error;
  ASSERT_TRUE(CampaignDriver(spec).Run(&error).has_value()) << error;
  spec.seed = 2;  // a different campaign
  spec.journal_path = b_path;
  ASSERT_TRUE(CampaignDriver(spec).Run(&error).has_value()) << error;

  EXPECT_FALSE(MergeJournals({a_path, b_path}, out_path, &error).has_value());
  EXPECT_NE(error.find("different campaigns"), std::string::npos) << error;

  // Overlapping inputs (the same journal twice) would double-count results
  // into a journal no resume could align; refused too.
  EXPECT_FALSE(MergeJournals({a_path, a_path}, out_path, &error).has_value());
  EXPECT_NE(error.find("overlap"), std::string::npos) << error;

  // And an existing output is never clobbered.
  EXPECT_FALSE(MergeJournals({a_path}, a_path, &error).has_value());
}

// --- driver modes beyond explore --------------------------------------------

// The wrappers route through the driver; spot-check that a driven table1
// campaign still reproduces the historical bug list (campaign_test.cc pins
// the full Table 1 content).
TEST(CampaignDriver, Table1SpecMatchesWrapper) {
  CampaignSpec spec;
  spec.system = "git";
  spec.mode = CampaignMode::kTable1;
  std::string error;
  auto outcome = CampaignDriver(spec).Run(&error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_EQ(outcome->bugs, RunGitCampaign());
  EXPECT_FALSE(outcome->bugs.empty());
}

TEST(CampaignDriver, ReplayModeReproducesJournaledCrashes) {
  EnsureStockTriggersRegistered();
  std::string path = TempPath("spec_replay.xml");
  std::remove(path.c_str());

  CampaignSpec record;
  record.system = "pbft";
  record.mode = CampaignMode::kExplore;
  record.strategy = ExploreStrategy::kCoverage;
  record.budget = 12;
  record.seed = 3;
  record.journal_path = path;
  std::string error;
  auto recorded = CampaignDriver(record).Run(&error);
  ASSERT_TRUE(recorded.has_value()) << error;
  ASSERT_FALSE(recorded->bugs.empty());

  CampaignSpec replay;
  replay.mode = CampaignMode::kReplay;
  replay.journal_path = path;
  auto outcome = CampaignDriver(replay).Run(&error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_TRUE(outcome->ok);
  EXPECT_GT(outcome->replays_expected, 0u);
  EXPECT_EQ(outcome->replays_reproduced, outcome->replays_expected);
  EXPECT_FALSE(outcome->replays.empty());
}

}  // namespace
}  // namespace lfi
