// VM tests, including the oracle property: executing a generated library
// stub under every environment selector yields exactly the fault modes the
// static profiler inferred from the same binary.

#include <gtest/gtest.h>

#include <set>

#include "image/assembler.h"
#include "image/vm.h"
#include "profiler/profiler.h"
#include "profiler/stub_gen.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

Image Asm(const std::string& src) {
  AsmError error;
  auto image = Assemble(src, &error);
  EXPECT_TRUE(image.has_value()) << error.message;
  return std::move(*image);
}

TEST(Vm, ArithmeticAndBranches) {
  Image image = Asm(R"(
module m
func f
  movi r1, 10
  movi r2, 32
  add r1, r2
  cmpi r1, 42
  jne .bad
  movi r0, 1
  ret
.bad:
  movi r0, 0
  ret
end
)");
  Vm vm(&image);
  VmResult r = vm.Run("f");
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_EQ(r.retval, 1);
}

TEST(Vm, LoopTerminates) {
  Image image = Asm(R"(
module m
func f
  movi r1, 0
  movi r0, 0
.loop:
  addi r0, 3
  addi r1, 1
  cmpi r1, 10
  jl .loop
  ret
end
)");
  Vm vm(&image);
  VmResult r = vm.Run("f");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.retval, 30);
}

TEST(Vm, StackAndMemory) {
  Image image = Asm(R"(
module m
func f
  movi r1, 7
  push r1
  movi r1, 0
  pop r2
  store [sp+8], r2
  load r0, [sp+8]
  ret
end
)");
  Vm vm(&image);
  VmResult r = vm.Run("f");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.retval, 7);
}

TEST(Vm, LocalCallsReturn) {
  Image image = Asm(R"(
module m
func helper
  movi r0, 5
  ret
end
func f
  call helper
  addi r0, 1
  ret
end
)");
  Vm vm(&image);
  VmResult r = vm.Run("f");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.retval, 6);
}

TEST(Vm, ImportHandlerSuppliesReturnValues) {
  Image image = Asm(R"(
module m
func f
  call read
  ret
end
)");
  Vm vm(&image);
  vm.set_import_handler([](const std::string& name) { return name == "read" ? -1 : 0; });
  VmResult r = vm.Run("f");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.retval, -1);
}

TEST(Vm, ErrnoStoreCaptured) {
  Image image = Asm(R"(
module m
func f
  movi r1, 4
  store [err+0], r1
  movi r0, -1
  ret
end
)");
  Vm vm(&image);
  VmResult r = vm.Run("f");
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.errno_value.has_value());
  EXPECT_EQ(*r.errno_value, 4);
}

TEST(Vm, InfiniteLoopTrapsOnFuel) {
  Image image = Asm(R"(
module m
func f
.spin:
  jmp .spin
end
)");
  Vm vm(&image);
  VmResult r = vm.Run("f", 1000);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, "out of fuel");
}

TEST(Vm, UnknownFunctionTraps) {
  Image image = Asm("module m\nfunc f\n  ret\nend\n");
  Vm vm(&image);
  EXPECT_FALSE(vm.Run("ghost").ok);
}

// The oracle property: for every libc function, the set of (retval, errno)
// behaviours the stub binary can actually execute equals the profile the
// static profiler infers from it.
class VmOracle : public ::testing::TestWithParam<int> {};

TEST_P(VmOracle, ProfilerModesMatchExecution) {
  FaultProfile truth;
  switch (GetParam()) {
    case 0:
      truth = LibcProfile();
      break;
    case 1:
      truth = LibxmlProfile();
      break;
    default:
      truth = LibaprProfile();
      break;
  }
  Image binary = GenerateLibraryImage(truth);
  LibraryProfiler profiler;
  FaultProfile inferred = profiler.Profile(binary);

  for (const auto& [name, fn] : inferred.functions()) {
    // Execute under selectors 0..N+2 and collect observed error modes
    // (constant returns that are negative or accompanied by errno, plus the
    // pthread convention of small positive error numbers).
    std::set<std::pair<int64_t, int>> executed_modes;
    std::set<int64_t> executed_errors;
    for (int selector = 0; selector < 64; ++selector) {
      Vm vm(&binary);
      vm.SetRegister(9, selector);
      vm.SetRegister(8, 0x7f000000 + selector);  // "computed" result source
      VmResult r = vm.Run(name);
      ASSERT_TRUE(r.ok) << name << " selector " << selector << ": " << r.trap;
      bool pthread_style = r.retval > 0 && r.retval <= 255 && !r.errno_value;
      if (r.retval < 0 || r.errno_value || pthread_style) {
        if (r.retval < 0 || r.errno_value) {
          executed_modes.insert({r.retval, r.errno_value.value_or(0)});
        }
        executed_errors.insert(r.retval);
      }
    }
    // Every inferred error mode must be executable...
    for (const ErrorSpec& spec : fn.errors) {
      if (spec.errnos.empty()) {
        EXPECT_TRUE(executed_errors.count(spec.retval))
            << name << " retval " << spec.retval;
      }
      for (int e : spec.errnos) {
        EXPECT_TRUE(executed_modes.count({spec.retval, e}))
            << name << " retval " << spec.retval << " errno " << e;
      }
    }
    // ...and every executed error retval must be in the inferred profile.
    std::set<int64_t> inferred_errors = fn.ErrorCodes();
    for (int64_t v : executed_errors) {
      EXPECT_TRUE(inferred_errors.count(v)) << name << " executed retval " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Libraries, VmOracle, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return "libc";
                             case 1:
                               return "libxml";
                             default:
                               return "libapr";
                           }
                         });

}  // namespace
}  // namespace lfi
