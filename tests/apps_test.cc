#include <gtest/gtest.h>

#include "apps/bind/bind.h"
#include "apps/git/git.h"
#include "apps/httpd/httpd.h"
#include "apps/mysql/mysql.h"
#include "core/controller.h"
#include "core/runtime.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/string_util.h"
#include "vlib/sim_crash.h"

namespace lfi {
namespace {

Scenario SiteScenarioFor(const AppBinary& binary, const char* site_name, int64_t retval,
                         int errno_value) {
  const CallSiteSpec* spec = binary.FindSite(site_name);
  EXPECT_NE(spec, nullptr) << site_name;
  Scenario s;
  TriggerDecl decl;
  decl.id = "site";
  decl.class_name = "CallStackTrigger";
  auto args = std::make_unique<XmlNode>("args");
  XmlNode* frame = args->AddChild("frame");
  frame->AddChild("module")->set_text(binary.image().module_name());
  frame->AddChild("offset")->set_text(StrFormat("%x", binary.SiteOffset(site_name)));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = spec->function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{"site", false});
  s.AddFunction(std::move(assoc));
  return s;
}

// --- mini-Git -----------------------------------------------------------------

class GitTest : public ::testing::Test {
 protected:
  GitTest() : git_(&fs_, &net_, "/repo") { EnsureStockTriggersRegistered(); }
  VirtualFs fs_;
  VirtualNet net_;
  MiniGit git_;
};

TEST_F(GitTest, DefaultTestSuitePasses) { EXPECT_TRUE(git_.RunDefaultTestSuite()); }

TEST_F(GitTest, ObjectStoreRoundTrip) {
  ASSERT_TRUE(git_.Init());
  auto id = git_.WriteObject("blob", "content\n");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->size(), 40u);
  std::string type;
  auto back = git_.ReadObject(*id, &type);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "content\n");
  EXPECT_EQ(type, "blob");
}

TEST_F(GitTest, ObjectIdsAreContentAddressed) {
  ASSERT_TRUE(git_.Init());
  auto a = git_.WriteObject("blob", "same");
  auto b = git_.WriteObject("blob", "same");
  auto c = git_.WriteObject("blob", "different");
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST_F(GitTest, CommitAdvancesHead) {
  ASSERT_TRUE(git_.Init());
  EXPECT_FALSE(git_.HeadCommit().has_value());
  ASSERT_TRUE(git_.Add("f", "1\n"));
  auto c1 = git_.Commit("one");
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(git_.HeadCommit().value(), *c1);
  ASSERT_TRUE(git_.Add("f", "2\n"));
  auto c2 = git_.Commit("two");
  ASSERT_TRUE(c2.has_value());
  EXPECT_NE(*c1, *c2);
  // c2 records c1 as parent.
  auto body = git_.ReadObject(*c2);
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(body->find("parent " + *c1), std::string::npos);
}

TEST_F(GitTest, FsckDetectsCorruption) {
  ASSERT_TRUE(git_.Init());
  ASSERT_TRUE(git_.Add("f", "x"));
  ASSERT_TRUE(git_.Commit("c").has_value());
  EXPECT_TRUE(git_.Fsck());
  fs_.WriteFile("/repo/.git/refs/heads/master", "not-a-hash");
  EXPECT_FALSE(git_.Fsck());
}

TEST_F(GitTest, OpendirBugCrashesUnderInjection) {
  ASSERT_TRUE(git_.Init());
  TestController controller(
      SiteScenarioFor(GitBinary(), "git.branches.opendir", 0, kENOMEM));
  TestOutcome outcome = controller.RunTest(&git_.libc(), [&] {
    git_.ListBranches();
    return true;
  });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_EQ(outcome.crash_kind, CrashKind::kSegfault);
  EXPECT_NE(outcome.crash_where.find("readdir"), std::string::npos);
}

TEST_F(GitTest, XmergeMalloc567CrashesUnderInjection) {
  ASSERT_TRUE(git_.Init());
  auto base = git_.WriteObject("blob", "a\nb\n");
  auto ours = git_.WriteObject("blob", "a\nB\n");
  auto theirs = git_.WriteObject("blob", "A\nb\n");
  ASSERT_TRUE(base && ours && theirs);
  TestController controller(
      SiteScenarioFor(GitBinary(), "git.xmerge.malloc567", 0, kENOMEM));
  TestOutcome outcome = controller.RunTest(&git_.libc(), [&] {
    git_.Merge(*base, *ours, *theirs);
    return true;
  });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_NE(outcome.crash_where.find("xmerge.c:567"), std::string::npos);
}

TEST_F(GitTest, PatienceMallocCrashesUnderInjection) {
  ASSERT_TRUE(git_.Init());
  auto a = git_.WriteObject("blob", "a\nb\nc\n");
  auto b = git_.WriteObject("blob", "a\nx\nc\n");
  ASSERT_TRUE(a && b);
  TestController controller(
      SiteScenarioFor(GitBinary(), "git.xpatience.malloc191", 0, kENOMEM));
  TestOutcome outcome = controller.RunTest(&git_.libc(), [&] {
    git_.PatienceDiffBlobs(*a, *b);
    return true;
  });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_NE(outcome.crash_where.find("xpatience.c:191"), std::string::npos);
}

TEST_F(GitTest, SetenvBugCorruptsRepository) {
  ASSERT_TRUE(git_.Init());
  ASSERT_TRUE(git_.Add("f", "data"));
  ASSERT_TRUE(git_.Commit("first").has_value());
  ASSERT_TRUE(git_.Fsck());
  TestController controller(SiteScenarioFor(GitBinary(), "git.hook.setenv", -1, kENOMEM));
  TestOutcome outcome = controller.RunTest(&git_.libc(), [&] {
    git_.Add("f", "more");
    return git_.Commit("second").has_value();
  });
  // No crash -- the failure is silent...
  EXPECT_NE(outcome.status, ExitStatus::kCrash);
  EXPECT_GT(outcome.injections, 0u);
  // ...but the hook ran with an incomplete environment and destroyed a ref.
  EXPECT_FALSE(git_.Fsck());
}

TEST_F(GitTest, MyersDiffMinimalScript) {
  std::vector<std::string> a = {"a", "b", "c", "a", "b", "b", "a"};
  std::vector<std::string> b = {"c", "b", "a", "b", "a", "c"};
  auto edits = MyersDiff(a, b);
  int dels = 0;
  int ins = 0;
  for (const auto& e : edits) {
    dels += e.kind == DiffEdit::Kind::kDelete;
    ins += e.kind == DiffEdit::Kind::kInsert;
  }
  EXPECT_EQ(dels + ins, 5);  // the canonical Myers example: D = 5
}

TEST_F(GitTest, MyersDiffEmptyInputs) {
  EXPECT_TRUE(MyersDiff({}, {}).empty());
  auto only_inserts = MyersDiff({}, {"x", "y"});
  ASSERT_EQ(only_inserts.size(), 2u);
  EXPECT_EQ(only_inserts[0].kind, DiffEdit::Kind::kInsert);
  auto only_deletes = MyersDiff({"x"}, {});
  ASSERT_EQ(only_deletes.size(), 1u);
  EXPECT_EQ(only_deletes[0].kind, DiffEdit::Kind::kDelete);
}

TEST_F(GitTest, MergeNonConflicting) {
  ASSERT_TRUE(git_.Init());
  auto base = git_.WriteObject("blob", "1\n2\n3\n4\n");
  auto ours = git_.WriteObject("blob", "one\n2\n3\n4\n");
  auto theirs = git_.WriteObject("blob", "1\n2\n3\nfour\n");
  auto merged = git_.Merge(*base, *ours, *theirs);
  ASSERT_TRUE(merged.has_value());
  EXPECT_FALSE(merged->conflict);
  EXPECT_EQ(JoinLines(merged->lines), "one\n2\n3\nfour\n");
}

TEST_F(GitTest, MergeConflictMarkers) {
  ASSERT_TRUE(git_.Init());
  auto base = git_.WriteObject("blob", "x\n");
  auto ours = git_.WriteObject("blob", "ours\n");
  auto theirs = git_.WriteObject("blob", "theirs\n");
  auto merged = git_.Merge(*base, *ours, *theirs);
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE(merged->conflict);
  std::string text = JoinLines(merged->lines);
  EXPECT_NE(text.find("<<<<<<<"), std::string::npos);
  EXPECT_NE(text.find(">>>>>>>"), std::string::npos);
}

// --- mini-MySQL ----------------------------------------------------------------

class MysqlTest : public ::testing::Test {
 protected:
  MysqlTest() : mysql_(&fs_, &net_, "/mysql") {
    EnsureStockTriggersRegistered();
    fs_.WriteFile("/mysql/share/errmsg.sys", "OK\nCan't create table\nDuplicate key\n");
  }
  VirtualFs fs_;
  VirtualNet net_;
  MiniMysql mysql_;
};

TEST_F(MysqlTest, StartupLoadsErrmsg) {
  ASSERT_TRUE(mysql_.Startup());
  EXPECT_EQ(mysql_.GetErrMsg(1), "Can't create table");
}

TEST_F(MysqlTest, MissingErrmsgHandledCleanly) {
  fs_.Remove("/mysql/share/errmsg.sys");
  EXPECT_FALSE(mysql_.Startup());  // bug #25097 is fixed: clean failure
}

TEST_F(MysqlTest, ErrmsgReadFailureCrashes) {
  TestController controller(
      SiteScenarioFor(MysqlBinary(), "mysql.errmsg.read", -1, kEIO));
  TestOutcome outcome = controller.RunTest(&mysql_.libc(), [&] { return mysql_.Startup(); });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_EQ(outcome.crash_kind, CrashKind::kSegfault);
  EXPECT_NE(outcome.crash_where.find("errmsg"), std::string::npos);
}

TEST_F(MysqlTest, MiCreateSucceedsNormally) {
  EXPECT_EQ(mysql_.MiCreate("t1"), 0);
  EXPECT_TRUE(fs_.FileExists("/mysql/t1.MYD.0"));
}

TEST_F(MysqlTest, MiCreateCloseFailureDoubleUnlocks) {
  TestController controller(
      SiteScenarioFor(MysqlBinary(), "mysql.mi_create.close", -1, kEIO));
  TestOutcome outcome =
      controller.RunTest(&mysql_.libc(), [&] { return mysql_.MiCreate("t2") == 0; });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_EQ(outcome.crash_kind, CrashKind::kDoubleUnlock);
}

TEST_F(MysqlTest, MergeBigAbortsOnCheckedScanFailure) {
  // A failure in the (checked) scan phase aborts without reaching mi_create.
  Scenario s = SiteScenarioFor(MysqlBinary(), "mysql.merge.close", -1, kEIO);
  TestController controller(s);
  TestOutcome outcome = controller.RunTest(&mysql_.libc(), [&] { return mysql_.MergeBig(); });
  EXPECT_EQ(outcome.status, ExitStatus::kWorkloadError);
}

TEST_F(MysqlTest, OltpReadsAndWrites) {
  ASSERT_TRUE(mysql_.OltpInit(100));
  auto row = mysql_.OltpRead(7);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->substr(0, 9), "00000007|");
  ASSERT_TRUE(mysql_.OltpWrite(7, "00000007|updated"));
  row = mysql_.OltpRead(7);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->substr(0, 16), "00000007|updated");
  EXPECT_FALSE(mysql_.OltpRead(100).has_value());  // out of range
}

TEST_F(MysqlTest, OltpTransactionMix) {
  ASSERT_TRUE(mysql_.OltpInit(50));
  Rng rng(3);
  EXPECT_TRUE(mysql_.OltpTransaction(&rng, /*read_only=*/true));
  EXPECT_TRUE(mysql_.OltpTransaction(&rng, /*read_only=*/false));
}

TEST_F(MysqlTest, GlobalsPublished) {
  mysql_.SetThreadCount(65);
  mysql_.SetShutdownInProgress(true);
  EXPECT_EQ(mysql_.libc().GetGlobal("thread_count").value(), 65);
  EXPECT_EQ(mysql_.libc().GetGlobal("shutdown_in_progress").value(), 1);
}

// --- mini-BIND -------------------------------------------------------------------

class BindTest : public ::testing::Test {
 protected:
  BindTest() : bind_(&fs_, &net_, "/etc/bind") { EnsureStockTriggersRegistered(); }
  VirtualFs fs_;
  VirtualNet net_;
  MiniBind bind_;
};

TEST_F(BindTest, DefaultTestSuitePasses) { EXPECT_TRUE(bind_.RunDefaultTestSuite()); }

TEST_F(BindTest, ZoneLoadingAndResolution) {
  fs_.WriteFile("/etc/bind/z", "a.example 1.1.1.1\nb.example 2.2.2.2\n");
  ASSERT_TRUE(bind_.LoadZone("/etc/bind/z"));
  EXPECT_EQ(bind_.Resolve("a.example").value(), "1.1.1.1");
  EXPECT_FALSE(bind_.Resolve("missing.example").has_value());
}

TEST_F(BindTest, QueriesOverNetwork) {
  fs_.WriteFile("/etc/bind/z", "host.example 9.9.9.9\n");
  ASSERT_TRUE(bind_.LoadZone("/etc/bind/z"));
  ASSERT_TRUE(bind_.StartServer(53));
  VirtualLibc client(&fs_, &net_, "client");
  int fd = client.Socket();
  ASSERT_EQ(client.BindSocket(fd, 1234), 0);
  ASSERT_GT(client.SendTo(fd, "Q host.example", 14, 53), 0);
  EXPECT_EQ(bind_.PumpQueries(), 1);
  char buf[128];
  long n = client.RecvFrom(fd, buf, sizeof buf, nullptr);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, static_cast<size_t>(n)), "A 9.9.9.9");
}

TEST_F(BindTest, StatsChannelRendersXml) {
  std::string stats = bind_.HandleStatsRequest();
  EXPECT_NE(stats.find("<queries>"), std::string::npos);
}

TEST_F(BindTest, StatsChannelCrashesWhenWriterAllocationFails) {
  TestController controller(
      SiteScenarioFor(BindBinary(), "bind.stats.newwriter", 0, kENOMEM));
  TestOutcome outcome = controller.RunTest(&bind_.libc(), [&] {
    bind_.HandleStatsRequest();
    return true;
  });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_EQ(outcome.crash_kind, CrashKind::kSegfault);
  EXPECT_NE(outcome.crash_where.find("xmlTextWriterWriteElement"), std::string::npos);
}

TEST_F(BindTest, DstLibInitSucceedsNormally) {
  EXPECT_TRUE(bind_.DstLibInit());
  EXPECT_TRUE(bind_.dst_initialized());
  bind_.DstLibDestroy();
  EXPECT_FALSE(bind_.dst_initialized());
}

TEST_F(BindTest, DstRecoveryFromFailedMallocAborts) {
  // Every one of the 17 allocations is checked; the recovery is the bug.
  Scenario s;
  TriggerDecl decl;
  decl.id = "nth";
  decl.class_name = "CallCountTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("count")->set_text("5");
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = "malloc";
  assoc.retval = 0;
  assoc.errno_value = kENOMEM;
  assoc.triggers.push_back(TriggerRef{"nth", false});
  s.AddFunction(std::move(assoc));

  TestController controller(s);
  TestOutcome outcome = controller.RunTest(&bind_.libc(), [&] { return bind_.DstLibInit(); });
  EXPECT_EQ(outcome.status, ExitStatus::kCrash);
  EXPECT_EQ(outcome.crash_kind, CrashKind::kAssert);
  EXPECT_NE(outcome.crash_where.find("dst_lib_destroy"), std::string::npos);
}

TEST_F(BindTest, JournalCleanup) {
  fs_.WriteFile("/etc/bind/a.jnl", "x");
  fs_.WriteFile("/etc/bind/b.jnl", "y");
  fs_.WriteFile("/etc/bind/keep.zone", "z");
  EXPECT_EQ(bind_.CleanJournalFiles(), 2);
  EXPECT_TRUE(fs_.FileExists("/etc/bind/keep.zone"));
}

// --- mini-httpd ----------------------------------------------------------------------

class HttpdTest : public ::testing::Test {
 protected:
  HttpdTest() : httpd_(&fs_, &net_, "/www") {
    EnsureStockTriggersRegistered();
    fs_.MkDir("/www/ext");
    httpd_.InstallDefaultSite();
  }
  VirtualFs fs_;
  VirtualNet net_;
  MiniHttpd httpd_;
};

TEST_F(HttpdTest, ServesStaticContent) {
  std::string body = httpd_.ProcessRequest({"/index.html", kMethodGet, ""});
  EXPECT_NE(body.find("static content line 0"), std::string::npos);
  EXPECT_EQ(httpd_.requests_served(), 1u);
}

TEST_F(HttpdTest, Serves404ForMissing) {
  EXPECT_EQ(httpd_.ProcessRequest({"/nope.html", kMethodGet, ""}), "404 Not Found");
}

TEST_F(HttpdTest, ServesPhp) {
  std::string body = httpd_.ProcessRequest({"/page.php", kMethodPost, "seed"});
  EXPECT_NE(body.find("<html>"), std::string::npos);
  EXPECT_EQ(body.size(), 53u);  // <html> + 40-hex digest + </html>
}

TEST_F(HttpdTest, ExtModuleRoutesThroughModExt) {
  EXPECT_EQ(httpd_.ProcessRequest({"/ext/data.bin", kMethodGet, ""}), "ext ok");
}

TEST_F(HttpdTest, MethodNumberPublishedForStateTrigger) {
  httpd_.ProcessRequest({"/index.html", kMethodPost, "body"});
  EXPECT_EQ(httpd_.libc().GetGlobal("request.method_number").value(), kMethodPost);
  httpd_.ProcessRequest({"/index.html", kMethodGet, ""});
  EXPECT_EQ(httpd_.libc().GetGlobal("request.method_number").value(), kMethodGet);
}

TEST_F(HttpdTest, PostOnlyInjectionViaStateTrigger) {
  // §7.4 trigger 4: inject only when the request is a POST.
  Scenario s;
  TriggerDecl decl;
  decl.id = "post";
  decl.class_name = "ProgramStateTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("var")->set_text("request.method_number");
  args->AddChild("op")->set_text("eq");
  args->AddChild("value")->set_text("1");
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = "apr_file_read";
  assoc.retval = -1;
  assoc.errno_value = kEIO;
  assoc.triggers.push_back(TriggerRef{"post", false});
  s.AddFunction(std::move(assoc));

  Runtime runtime(s);
  httpd_.libc().set_interposer(&runtime);
  EXPECT_NE(httpd_.ProcessRequest({"/index.html", kMethodGet, ""}), "500 Internal Server Error");
  EXPECT_EQ(httpd_.ProcessRequest({"/index.html", kMethodPost, ""}),
            "500 Internal Server Error");
  httpd_.libc().set_interposer(nullptr);
}

// --- binary/site-table consistency -----------------------------------------------------

TEST(AppBinaries, SiteOffsetsResolve) {
  for (const AppBinary* binary :
       {&GitBinary(), &MysqlBinary(), &BindBinary(), &HttpdBinary()}) {
    for (const CallSiteSpec& site : binary->sites()) {
      uint32_t offset = binary->SiteOffset(site.site_name);
      ASSERT_NE(offset, 0xffffffffu) << site.site_name;
      Instruction instr;
      ASSERT_TRUE(binary->image().Decode(offset, &instr)) << site.site_name;
      EXPECT_EQ(instr.op, Op::kCall) << site.site_name;
      EXPECT_EQ(instr.flags, kCallImport) << site.site_name;
      EXPECT_EQ(binary->image().imports()[static_cast<size_t>(instr.imm)], site.function)
          << site.site_name;
      const ImageSymbol* sym = binary->image().SymbolContaining(offset);
      ASSERT_NE(sym, nullptr) << site.site_name;
      EXPECT_EQ(sym->name, site.enclosing) << site.site_name;
    }
  }
}

TEST(AppBinaries, Table4Populations) {
  auto count = [](const AppBinary& binary, const char* function) {
    return binary.SitesFor(function).size();
  };
  EXPECT_EQ(count(GitBinary(), "malloc"), 25u);
  EXPECT_EQ(count(GitBinary(), "close"), 127u);
  EXPECT_EQ(count(GitBinary(), "readlink"), 7u);
  EXPECT_EQ(count(BindBinary(), "malloc"), 17u);
  EXPECT_EQ(count(BindBinary(), "unlink"), 6u);
  EXPECT_EQ(count(BindBinary(), "open"), 6u);
  EXPECT_EQ(count(BindBinary(), "close"), 39u);
}

}  // namespace
}  // namespace lfi
