// BFS, the distributed client/server filesystem target: the oracle's model
// stays consistent with the store under every recoverable fault class
// (library errors at checked sites, partial transfers on the vnet fabric,
// physical loss), the two planted Table 1 bugs surface deterministically
// (the unchecked durability-barrier fopen crashes; the inode-defer id mixup
// corrupts silently and only the remount audit sees it), and the campaign
// driver's equivalence bar holds for bfs exactly as for pbft: warm == cold
// byte-identical journals at any worker count, kill-and-resume rebuilds the
// same bytes, and the 2-shard epoch run merges to the single-process file.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/bfs/bfs.h"
#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "core/runtime.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/string_util.h"

namespace lfi {
namespace {

class BfsTest : public ::testing::Test {
 protected:
  BfsTest() { EnsureStockTriggersRegistered(); }
  VirtualFs fs_;
};

// A scenario injecting `retval`/`errno_value` into `function` at the named
// bfs call site, via the same stack trigger the analyzer emits. With `once`
// a SingletonTrigger closes the conjunction, capping it at one injection.
Scenario SiteScenario(const char* site, const char* function, int64_t retval,
                      int errno_value, bool once) {
  const AppBinary& binary = BfsBinary();
  Scenario s;
  TriggerDecl decl;
  decl.id = "site";
  decl.class_name = "CallStackTrigger";
  auto args = std::make_unique<XmlNode>("args");
  XmlNode* frame = args->AddChild("frame");
  frame->AddChild("module")->set_text(binary.image().module_name());
  frame->AddChild("offset")->set_text(StrFormat("%x", binary.SiteOffset(site)));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  if (once) {
    TriggerDecl one;
    one.id = "once";
    one.class_name = "SingletonTrigger";
    s.AddTrigger(std::move(one));
  }
  FunctionAssoc assoc;
  assoc.function = function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{"site", false});
  if (once) {
    assoc.triggers.push_back(TriggerRef{"once", false});
  }
  s.AddFunction(std::move(assoc));
  return s;
}

TEST_F(BfsTest, CleanWorkloadCompletesConsistently) {
  VirtualNet net(1);
  BfsConfig config;
  BfsCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  int ticks = cluster.RunWorkload(2000);
  EXPECT_LT(ticks, 2000);
  EXPECT_FALSE(cluster.crashed());
  EXPECT_TRUE(cluster.AllClientsDone());
  EXPECT_EQ(cluster.CheckConsistency(), "");
  for (int i = 0; i < config.clients; ++i) {
    EXPECT_GT(cluster.client(i).completed_ops(), 0) << "client " << i;
  }
}

// Every checked call site's recovery path absorbs a single injected fault
// without the store and the oracle's model drifting apart: retries, deferred
// rewrites, tombstones, and client-visible errors all leave a state the
// remount audit accepts.
TEST_F(BfsTest, CheckedSiteFaultsRecoverConsistently) {
  struct Fault {
    const char* site;
    const char* function;
    int64_t retval;
  };
  const Fault kFaults[] = {
      {"bfs.block.fopen", "fopen", 0},   {"bfs.block.fwrite", "fwrite", 0},
      {"bfs.block.fclose", "fclose", -1}, {"bfs.read.fopen", "fopen", 0},
      {"bfs.read.fread", "fread", 0},     {"bfs.read.fclose", "fclose", -1},
      {"bfs.inode.fwrite", "fwrite", 0},  {"bfs.meta.fopen", "fopen", 0},
      {"bfs.meta.fwrite", "fwrite", 0},   {"bfs.unlink.blocks", "unlink", -1},
      {"bfs.unlink.unlink", "unlink", -1}, {"bfs.super.fclose", "fclose", -1},
      {"bfs.server.sendto", "sendto", -1}, {"bfs.server.recvfrom", "recvfrom", -1},
  };
  for (const Fault& fault : kFaults) {
    SCOPED_TRACE(fault.site);
    VirtualFs fs;
    VirtualNet net(2);
    BfsConfig config;
    BfsCluster cluster(&fs, &net, config);
    ASSERT_TRUE(cluster.Start());
    Scenario s = SiteScenario(fault.site, fault.function, fault.retval, kEIO,
                              /*once=*/true);
    Runtime runtime(s);
    cluster.server().libc().set_interposer(&runtime);
    cluster.RunWorkload(4000);
    EXPECT_FALSE(cluster.crashed()) << cluster.crash_reason();
    EXPECT_TRUE(cluster.AllClientsDone());
    EXPECT_EQ(cluster.CheckConsistency(), "");
  }
}

TEST_F(BfsTest, PartialTransfersOnTheFabricRecoverConsistently) {
  VirtualNet net(3);
  net.set_partial_send_probability(0.25);
  net.set_partial_recv_probability(0.25);
  BfsConfig config;
  BfsCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  cluster.RunWorkload(8000);
  // The faults actually fired, and the frame layer (length prefix + CRC)
  // plus the client's retry/reconnect loop absorbed every one of them.
  EXPECT_GT(net.partial_send_count() + net.partial_recv_count(), 0u);
  EXPECT_FALSE(cluster.crashed()) << cluster.crash_reason();
  EXPECT_TRUE(cluster.AllClientsDone());
  EXPECT_EQ(cluster.CheckConsistency(), "");
}

TEST_F(BfsTest, PhysicalLossRecoversConsistently) {
  VirtualNet net(4);
  net.set_loss_probability(0.3);
  BfsConfig config;
  BfsCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  cluster.RunWorkload(8000);
  EXPECT_GT(net.dropped_count(), 0u);
  EXPECT_FALSE(cluster.crashed()) << cluster.crash_reason();
  EXPECT_TRUE(cluster.AllClientsDone());
  EXPECT_EQ(cluster.CheckConsistency(), "");
}

// Planted bug #1: the durability barrier never checks fopen, so an injected
// failure hands FWrite a NULL stream and the server dies mid-FSYNC.
TEST_F(BfsTest, SuperblockFopenBugCrashes) {
  VirtualNet net(5);
  BfsConfig config;
  BfsCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  Scenario s = SiteScenario("bfs.super.fopen", "fopen", 0, kEINVAL, /*once=*/false);
  Runtime runtime(s);
  cluster.server().libc().set_interposer(&runtime);
  cluster.RunWorkload(4000);
  EXPECT_TRUE(cluster.crashed());
  EXPECT_NE(cluster.crash_reason().find("fwrite"), std::string::npos)
      << cluster.crash_reason();
}

// Planted bug #2: a failed inode write defers the rewrite under the client's
// connection handle instead of the inode number; SyncMeta() skips ids it
// does not recognize, so the store silently keeps the stale inode while
// every client gets its ACK. Nothing crashes, all clients finish -- only the
// remount audit sees the divergence.
TEST_F(BfsTest, InodeDeferBugCorruptsSilently) {
  VirtualNet net(6);
  BfsConfig config;
  BfsCluster cluster(&fs_, &net, config);
  ASSERT_TRUE(cluster.Start());
  Scenario s = SiteScenario("bfs.inode.fopen", "fopen", 0, kEIO, /*once=*/false);
  Runtime runtime(s);
  cluster.server().libc().set_interposer(&runtime);
  cluster.RunWorkload(4000);
  EXPECT_FALSE(cluster.crashed()) << cluster.crash_reason();
  EXPECT_TRUE(cluster.AllClientsDone());
  EXPECT_TRUE(cluster.Coverage().WasHit("bfs.inode.defer"));
  EXPECT_NE(cluster.CheckConsistency(), "");
}

// --- the campaign driver's equivalence bar, for bfs -------------------------

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void RemoveEpochArtifacts(const std::string& journal, size_t shards) {
  std::remove(journal.c_str());
  for (size_t epoch = 0; epoch < 8; ++epoch) {
    std::remove((journal + StrFormat(".epoch%zu.frontier", epoch)).c_str());
    for (size_t shard = 0; shard < shards; ++shard) {
      std::remove((journal + StrFormat(".epoch%zu.shard%zu", epoch, shard)).c_str());
    }
  }
}

CampaignSpec BfsEpochSpec(const std::string& journal, size_t shards, int workers = 1) {
  CampaignSpec spec;
  spec.system = "bfs";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kCoverage;
  spec.budget = 32;
  spec.seed = 7;
  spec.workers = workers;
  spec.epoch_len = 2;
  spec.journal_path = journal;
  spec.shard_count = shards;
  return spec;
}

std::optional<CampaignOutcome> RunDriver(CampaignSpec spec, std::string* error) {
  CampaignDriver driver(std::move(spec));
  return driver.Run(error);
}

void ExpectSameOutcome(const CampaignOutcome& a, const CampaignOutcome& b) {
  ASSERT_EQ(a.bugs.size(), b.bugs.size());
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].system, b.bugs[i].system) << i;
    EXPECT_EQ(a.bugs[i].kind, b.bugs[i].kind) << i;
    EXPECT_EQ(a.bugs[i].where, b.bugs[i].where) << i;
    EXPECT_EQ(a.bugs[i].injected, b.bugs[i].injected) << i;
  }
  CoverageMap::Stats sa = a.coverage.ComputeStats();
  CoverageMap::Stats sb = b.coverage.ComputeStats();
  EXPECT_EQ(sa.covered_recovery_blocks, sb.covered_recovery_blocks);
  EXPECT_EQ(sa.covered_blocks, sb.covered_blocks);
  EXPECT_EQ(a.scenarios_run, b.scenarios_run);
}

TEST(BfsCampaign, WarmColdAndWorkerCountsAreByteIdentical) {
  std::string base_path = TempPath("bfs_explore_base.lfij");
  std::string error;
  RemoveEpochArtifacts(base_path, 0);
  auto base = RunDriver(BfsEpochSpec(base_path, 1), &error);
  ASSERT_TRUE(base.has_value()) << error;
  EXPECT_FALSE(base->bugs.empty());
  std::string base_bytes = ReadFile(base_path);

  // Ablation: every job against a freshly built cluster instead of the warm
  // snapshot/reset pool. Same journal, byte for byte.
  std::string cold_path = TempPath("bfs_explore_cold.lfij");
  RemoveEpochArtifacts(cold_path, 0);
  CampaignSpec cold = BfsEpochSpec(cold_path, 1);
  cold.cold_start = true;
  auto cold_outcome = RunDriver(cold, &error);
  ASSERT_TRUE(cold_outcome.has_value()) << error;
  ExpectSameOutcome(*base, *cold_outcome);
  EXPECT_EQ(ReadFile(cold_path), base_bytes);

  for (int workers : {2, 8}) {
    std::string path = TempPath(StrFormat("bfs_explore_w%d.lfij", workers).c_str());
    RemoveEpochArtifacts(path, 0);
    auto outcome = RunDriver(BfsEpochSpec(path, 1, workers), &error);
    ASSERT_TRUE(outcome.has_value()) << error;
    ExpectSameOutcome(*base, *outcome);
    EXPECT_EQ(ReadFile(path), base_bytes) << "workers=" << workers;
  }
}

TEST(BfsCampaign, TwoShardEpochRunMatchesSingleProcess) {
  std::string single_path = TempPath("bfs_epoch_single.lfij");
  std::string error;
  RemoveEpochArtifacts(single_path, 0);
  auto single = RunDriver(BfsEpochSpec(single_path, 1), &error);
  ASSERT_TRUE(single.has_value()) << error;
  std::string single_bytes = ReadFile(single_path);

  std::string dist_path = TempPath("bfs_epoch_dist.lfij");
  RemoveEpochArtifacts(dist_path, 2);
  auto distributed = RunDriver(BfsEpochSpec(dist_path, 2), &error);
  ASSERT_TRUE(distributed.has_value()) << error;
  ExpectSameOutcome(*single, *distributed);
  EXPECT_EQ(distributed->shards.size(), 2u);
  EXPECT_EQ(ReadFile(dist_path), single_bytes);
}

TEST(BfsCampaign, ResumeAfterKillRebuildsIdenticalBytes) {
  std::string path = TempPath("bfs_epoch_resume.lfij");
  std::string error;
  RemoveEpochArtifacts(path, 2);
  auto full = RunDriver(BfsEpochSpec(path, 2), &error);
  ASSERT_TRUE(full.has_value()) << error;
  std::string full_bytes = ReadFile(path);

  // Tear the merged journal mid-file; the sealed per-epoch shard journals
  // survive, and resume rebuilds the merged bytes without rerunning the
  // completed epochs.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(full_bytes.data(), static_cast<std::streamsize>(full_bytes.size() / 2));
  }
  CampaignSpec resume;
  resume.mode = CampaignMode::kResume;
  resume.journal_path = path;
  resume.shard_count = 2;
  auto resumed = RunDriver(resume, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  ExpectSameOutcome(*full, *resumed);
  EXPECT_EQ(ReadFile(path), full_bytes);
}

}  // namespace
}  // namespace lfi
