// Epoch-synchronized distributed coverage-guided exploration (the epoch
// protocol in docs/architecture.md): FrontierState round trips exactly, a
// source reseeded from an exported frontier is indistinguishable from the
// live-fed one, shard children re-derive the master's epoch enumeration
// open-loop, and the distributed spawn -> merge -> reseed campaign writes a
// merged journal byte-identical to the single-process --epoch-len run --
// at any worker count, under any merge input order, and after killing the
// orchestrator and resuming from the sealed per-epoch shard journals.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/callsite_analyzer.h"
#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "apps/git/git.h"
#include "core/analysis_cache.h"
#include "core/campaign_engine.h"
#include "core/exploration.h"
#include "core/journal.h"
#include "core/stock_triggers.h"
#include "profiler/fault_profile.h"
#include "profiler/profiler.h"
#include "profiler/stub_gen.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// The driver refuses to clobber an existing merged journal, so tests clear
// the journal plus every per-epoch artifact a previous run may have left.
void RemoveEpochArtifacts(const std::string& journal, size_t shards) {
  std::remove(journal.c_str());
  for (size_t epoch = 0; epoch < 8; ++epoch) {
    std::remove((journal + StrFormat(".epoch%zu.frontier", epoch)).c_str());
    for (size_t shard = 0; shard < shards; ++shard) {
      std::remove((journal + StrFormat(".epoch%zu.shard%zu", epoch, shard)).c_str());
    }
  }
}

// The canonical distributed-explore spec the equivalence tests share: pbft,
// coverage strategy, a budget that spans several epochs at epoch_len 2.
CampaignSpec EpochSpec(const std::string& journal, size_t shards, int workers = 1) {
  CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = CampaignMode::kExplore;
  spec.strategy = ExploreStrategy::kCoverage;
  spec.budget = 32;
  spec.seed = 7;
  spec.workers = workers;
  spec.epoch_len = 2;
  spec.journal_path = journal;
  spec.shard_count = shards;
  return spec;
}

std::optional<CampaignOutcome> RunDriver(CampaignSpec spec, std::string* error) {
  CampaignDriver driver(std::move(spec));
  return driver.Run(error);
}

void ExpectSameOutcome(const CampaignOutcome& a, const CampaignOutcome& b) {
  ASSERT_EQ(a.bugs.size(), b.bugs.size());
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].system, b.bugs[i].system) << i;
    EXPECT_EQ(a.bugs[i].kind, b.bugs[i].kind) << i;
    EXPECT_EQ(a.bugs[i].where, b.bugs[i].where) << i;
    EXPECT_EQ(a.bugs[i].injected, b.bugs[i].injected) << i;
  }
  CoverageMap::Stats sa = a.coverage.ComputeStats();
  CoverageMap::Stats sb = b.coverage.ComputeStats();
  EXPECT_EQ(sa.covered_recovery_blocks, sb.covered_recovery_blocks);
  EXPECT_EQ(sa.covered_blocks, sb.covered_blocks);
  EXPECT_EQ(a.scenarios_run, b.scenarios_run);
}

// --- FrontierState: the unit of frontier hand-off ---------------------------

// A synthetic analysis small enough to reason about: two profiled functions,
// four call sites across two enclosing functions and all three check classes.
FaultProfile SyntheticProfile() {
  FaultProfile profile("synlib");
  FunctionProfile alpha;
  alpha.name = "alpha";
  alpha.errors = {{-1, {2, 13}}, {0, {}}};
  profile.AddFunction(alpha);
  FunctionProfile beta;
  beta.name = "beta";
  beta.errors = {{-1, {5}}};
  profile.AddFunction(beta);
  return profile;
}

std::vector<CallSiteReport> SyntheticReports() {
  std::vector<CallSiteReport> reports;
  auto add = [&](const char* function, uint32_t offset, const char* enclosing,
                 CheckClass check_class) {
    CallSiteReport report;
    report.site.module = "app";
    report.site.offset = offset;
    report.site.function = function;
    report.site.enclosing = enclosing;
    report.check_class = check_class;
    reports.push_back(std::move(report));
  };
  add("alpha", 0x10, "fn_a", CheckClass::kNone);
  add("beta", 0x20, "fn_a", CheckClass::kPartial);
  add("alpha", 0x30, "fn_b", CheckClass::kFull);
  add("beta", 0x40, "fn_b", CheckClass::kNone);
  return reports;
}

// Deterministic synthetic feedback, a pure function of the job label, so the
// live and the reseeded source observe identical feedback without running
// anything. Distinct fingerprints keep the mutation path exercised.
RunFeedback SyntheticFeedback(const CampaignJob& job) {
  uint64_t h = 1469598103934665603ull;
  for (char c : job.label) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  RunFeedback feedback;
  feedback.injections = 1;
  feedback.fingerprint = job.label;
  feedback.new_bug = h % 5 == 0;
  if (h % 3 == 0) {
    feedback.new_blocks = {job.label + "#block"};
  }
  return feedback;
}

TEST(FrontierState, XmlRoundTripsExactlyAndIsCanonical) {
  FrontierState state;
  state.explore = {{0, -1, 2, 0}, {3, -1, 5, 0}};
  state.exploit = {{1, -1, 13, 2}};
  state.seen_keys = {"0|-1|2|0", "1|-1|5|0", "3|-1|5|0"};
  state.seen_fingerprints = {"fp-a", "fp-b"};
  state.scheduled = 9;
  std::string xml = state.ToXml();
  std::string error;
  auto parsed = FrontierState::Parse(xml, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(*parsed == state);
  EXPECT_EQ(parsed->ToXml(), xml);  // canonical: second trip is byte-stable
}

TEST(FrontierState, ReseededSourceContinuesExactlyLikeTheLiveOne) {
  FaultProfile profile = SyntheticProfile();
  CoverageGuidedSource::Options options;
  options.budget = 24;
  options.seed = 11;
  CoverageGuidedSource live(SyntheticReports(), profile, options);
  auto feedback_round = [](CoverageGuidedSource& source) {
    std::vector<CampaignJob> batch = source.NextBatch(4);
    for (const CampaignJob& job : batch) {
      source.OnFeedback(job, SyntheticFeedback(job));
    }
    return batch;
  };
  feedback_round(live);
  feedback_round(live);

  FrontierState state = live.ExportFrontier();
  EXPECT_EQ(state.scheduled, live.scheduled());
  EXPECT_GT(state.scheduled, 0u);
  // The snapshot survives its wire format.
  std::string error;
  auto parsed = FrontierState::Parse(state.ToXml(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(*parsed == state);

  // A fresh source reseeded from the parsed snapshot emits the same jobs as
  // the live source from here to exhaustion, given the same feedback.
  CoverageGuidedSource reseeded(SyntheticReports(), profile, options);
  reseeded.ImportFrontier(*parsed);
  while (true) {
    std::vector<CampaignJob> a = feedback_round(live);
    std::vector<CampaignJob> b = feedback_round(reseeded);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].label, b[i].label) << i;
      EXPECT_EQ(a[i].seed, b[i].seed) << i;
      EXPECT_EQ(a[i].stream_index, b[i].stream_index) << i;
    }
    if (a.empty()) {
      break;
    }
  }
  EXPECT_TRUE(live.ExportFrontier() == reseeded.ExportFrontier());
}

TEST(FrontierState, OpenLoopChildReDerivesTheMastersEpochEnumeration) {
  FaultProfile profile = SyntheticProfile();
  CoverageGuidedSource::Options options;
  options.budget = 32;
  options.seed = 5;
  CoverageGuidedSource master(SyntheticReports(), profile, options);
  // Warm up one fed batch so the boundary frontier carries exploit plans and
  // dedup state, then snapshot it.
  for (const CampaignJob& job : master.NextBatch(8)) {
    master.OnFeedback(job, SyntheticFeedback(job));
  }
  FrontierState boundary = master.ExportFrontier();

  // The master enumerates one epoch: epoch_len batches with feedback
  // deferred past the epoch, exactly like the engine's epoch mode.
  constexpr size_t kEpochLen = 2;
  constexpr size_t kBatch = CampaignEngine::Options::kDefaultBatchSize;
  std::vector<CampaignJob> epoch_jobs;
  for (size_t batch = 0; batch < kEpochLen; ++batch) {
    std::vector<CampaignJob> jobs = master.NextBatch(kBatch);
    if (jobs.empty()) {
      break;
    }
    epoch_jobs.insert(epoch_jobs.end(), jobs.begin(), jobs.end());
  }
  ASSERT_FALSE(epoch_jobs.empty());

  // A shard child reseeded from the boundary re-derives the same enumeration
  // open-loop, stopping at the schedule limit without any feedback.
  CoverageGuidedSource::Options child_options = options;
  child_options.open_loop = true;
  child_options.schedule_limit = boundary.scheduled + kEpochLen * kBatch;
  CoverageGuidedSource child(SyntheticReports(), profile, child_options);
  EXPECT_FALSE(child.needs_feedback());
  child.ImportFrontier(boundary);
  std::vector<CampaignJob> child_jobs;
  while (true) {
    std::vector<CampaignJob> jobs = child.NextBatch(kBatch);
    if (jobs.empty()) {
      break;
    }
    child_jobs.insert(child_jobs.end(), jobs.begin(), jobs.end());
  }
  ASSERT_EQ(child_jobs.size(), epoch_jobs.size());
  for (size_t i = 0; i < epoch_jobs.size(); ++i) {
    EXPECT_EQ(child_jobs[i].label, epoch_jobs[i].label) << i;
    EXPECT_EQ(child_jobs[i].seed, epoch_jobs[i].seed) << i;
    EXPECT_EQ(child_jobs[i].stream_index, epoch_jobs[i].stream_index) << i;
  }
}

TEST(FrontierState, ExportRefusesWithFeedbackOutstanding) {
  FaultProfile profile = SyntheticProfile();
  CoverageGuidedSource::Options options;
  options.budget = 8;
  options.seed = 3;
  CoverageGuidedSource source(SyntheticReports(), profile, options);
  std::vector<CampaignJob> batch = source.NextBatch(4);
  ASSERT_FALSE(batch.empty());
  EXPECT_THROW(source.ExportFrontier(), std::logic_error);
  for (const CampaignJob& job : batch) {
    source.OnFeedback(job, SyntheticFeedback(job));
  }
  EXPECT_NO_THROW(source.ExportFrontier());
}

// --- the distributed campaign's acceptance bar ------------------------------

TEST(EpochExplore, DistributedRunIsByteIdenticalToSingleProcess) {
  std::string single_path = TempPath("epoch_single.lfij");
  std::string error;
  RemoveEpochArtifacts(single_path, 0);
  auto single = RunDriver(EpochSpec(single_path, 1), &error);
  ASSERT_TRUE(single.has_value()) << error;
  EXPECT_FALSE(single->bugs.empty());
  std::string single_bytes = ReadFile(single_path);

  // Same schedule, more workers: the epoch protocol keys feedback timing to
  // merged batches, never the worker count.
  for (int workers : {2, 8}) {
    std::string path = TempPath(StrFormat("epoch_single_w%d.lfij", workers).c_str());
    RemoveEpochArtifacts(path, 0);
    auto outcome = RunDriver(EpochSpec(path, 1, workers), &error);
    ASSERT_TRUE(outcome.has_value()) << error;
    ExpectSameOutcome(*single, *outcome);
    EXPECT_EQ(ReadFile(path), single_bytes) << "workers=" << workers;
  }

  // Distributed at 2 and 4 shards: same bug set, same coverage, and the
  // merged journal is the same file, byte for byte.
  for (size_t shards : {size_t{2}, size_t{4}}) {
    std::string path = TempPath(StrFormat("epoch_dist_%zu.lfij", shards).c_str());
    RemoveEpochArtifacts(path, shards);
    auto distributed = RunDriver(EpochSpec(path, shards), &error);
    ASSERT_TRUE(distributed.has_value()) << error;
    ExpectSameOutcome(*single, *distributed);
    EXPECT_EQ(distributed->shards.size(), shards);
    EXPECT_EQ(ReadFile(path), single_bytes) << "shards=" << shards;
  }
}

TEST(EpochExplore, MergeOfEpochShardJournalsIsInputOrderInvariant) {
  std::string dist_path = TempPath("epoch_shuffle.lfij");
  std::string error;
  RemoveEpochArtifacts(dist_path, 2);
  CampaignSpec spec = EpochSpec(dist_path, 2);
  auto distributed = RunDriver(spec, &error);
  ASSERT_TRUE(distributed.has_value()) << error;
  std::string merged_bytes = ReadFile(dist_path);

  // Every per-epoch shard journal the run left behind, one-shot merged in
  // shuffled input orders, reproduces the orchestrator's merged bytes.
  std::vector<std::string> inputs;
  for (size_t epoch = 0; epoch < 8; ++epoch) {
    for (size_t shard = 0; shard < 2; ++shard) {
      std::string path = spec.EpochShardJournalPath(epoch, shard);
      if (std::ifstream(path).good()) {
        inputs.push_back(path);
      }
    }
  }
  ASSERT_GE(inputs.size(), 4u);  // at least two epochs of two shards
  for (int permutation = 0; permutation < 3; ++permutation) {
    std::string out_path =
        TempPath(StrFormat("epoch_shuffle_out_%d.lfij", permutation).c_str());
    std::remove(out_path.c_str());
    auto merged = MergeCampaignJournals(inputs, out_path, &error);
    ASSERT_TRUE(merged.has_value()) << error;
    EXPECT_EQ(ReadFile(out_path), merged_bytes) << "permutation " << permutation;
    std::next_permutation(inputs.begin(), inputs.end());
  }
}

TEST(EpochExplore, ResumeAfterKillRebuildsIdenticalBytesFromShardJournals) {
  std::string path = TempPath("epoch_resume.lfij");
  std::string error;
  RemoveEpochArtifacts(path, 4);
  auto full = RunDriver(EpochSpec(path, 4), &error);
  ASSERT_TRUE(full.has_value()) << error;
  std::string full_bytes = ReadFile(path);

  // Simulate the orchestrator dying mid-campaign: the merged journal is torn
  // somewhere past the header while the sealed per-epoch shard journals
  // survive. Resume must rebuild the merged journal bit-identically without
  // rerunning the completed epochs (their shard journals replay from disk).
  for (size_t keep : {full_bytes.size() / 2, full_bytes.size() / 4}) {
    {
      std::ofstream torn(path, std::ios::binary | std::ios::trunc);
      torn.write(full_bytes.data(), static_cast<std::streamsize>(keep));
    }
    CampaignSpec resume;
    resume.mode = CampaignMode::kResume;
    resume.journal_path = path;
    resume.shard_count = 4;
    auto resumed = RunDriver(resume, &error);
    ASSERT_TRUE(resumed.has_value()) << error << " keep=" << keep;
    ExpectSameOutcome(*full, *resumed);
    EXPECT_EQ(ReadFile(path), full_bytes) << "keep=" << keep;
  }
}

TEST(EpochExplore, MergeRejectsOverlappingStreamIndexes) {
  std::string a_path = TempPath("epoch_overlap_a.lfij");
  std::string b_path = TempPath("epoch_overlap_b.lfij");
  std::string out_path = TempPath("epoch_overlap_out.lfij");
  std::remove(a_path.c_str());
  std::remove(b_path.c_str());
  std::remove(out_path.c_str());
  auto write_journal = [](const std::string& path, const char* shard,
                          std::vector<size_t> stream_indexes) {
    JournalMetadata meta = {{"command", "explore"}, {"system", "pbft"},
                            {"strategy", "coverage"}, {"budget", "8"},
                            {"seed", "0x1"},         {"epoch-len", "1"},
                            {"shard", shard},        {"shards", "2"},
                            {"epoch", "0"}};
    CampaignJournal journal;
    std::string error;
    ASSERT_TRUE(journal.Create(path, meta, &error)) << error;
    for (size_t index : stream_indexes) {
      JournalRecord record;
      record.label = StrFormat("%s-%zu", shard, index);
      record.seed = 1;
      record.stream_index = index;
      record.epoch = 0;
      ASSERT_TRUE(journal.Append(record));
    }
    ASSERT_TRUE(journal.Finalize(&error)) << error;
  };
  write_journal(a_path, "0", {0, 2});
  write_journal(b_path, "1", {2, 3});  // stream index 2 collides with a
  std::string error;
  auto merged = MergeCampaignJournals({a_path, b_path}, out_path, &error);
  EXPECT_FALSE(merged.has_value());
  EXPECT_NE(error.find("stream"), std::string::npos) << error;
}

// --- the persistent analysis cache ------------------------------------------

TEST(AnalysisCachePersistence, ReportsRoundTripThroughTheDiskCache) {
  std::string dir = TempPath("epoch_acache");
  std::filesystem::remove_all(dir);  // stale content-keyed files = disk hits
  AnalysisCache& cache = AnalysisCache::Instance();
  cache.SetPersistDir(dir);
  cache.Clear();

  FaultProfile profile = LibraryProfiler().Profile(GenerateLibraryImage(LibcProfile()));
  const Image& binary = GitBinary().image();
  std::vector<CallSiteReport> computed = cache.Reports(binary, profile);
  AnalysisCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.report_misses, 1u);
  EXPECT_EQ(stats.report_disk_writes, 1u);
  EXPECT_EQ(stats.report_disk_hits, 0u);

  // A "new process" (cleared in-memory cache, same persist dir) serves the
  // analysis from disk instead of re-running Algorithm 1, bit-equal.
  cache.Clear();
  const std::vector<CallSiteReport>& reloaded = cache.Reports(binary, profile);
  stats = cache.stats();
  EXPECT_EQ(stats.report_disk_hits, 1u);
  EXPECT_EQ(stats.report_misses, 0u);
  ASSERT_EQ(reloaded.size(), computed.size());
  for (size_t i = 0; i < computed.size(); ++i) {
    EXPECT_EQ(reloaded[i].site.module, computed[i].site.module) << i;
    EXPECT_EQ(reloaded[i].site.offset, computed[i].site.offset) << i;
    EXPECT_EQ(reloaded[i].site.function, computed[i].site.function) << i;
    EXPECT_EQ(reloaded[i].site.enclosing, computed[i].site.enclosing) << i;
    EXPECT_EQ(reloaded[i].check_class, computed[i].check_class) << i;
    EXPECT_EQ(reloaded[i].has_ineq_check, computed[i].has_ineq_check) << i;
    EXPECT_EQ(reloaded[i].checked_eq, computed[i].checked_eq) << i;
    EXPECT_EQ(reloaded[i].checked_ineq, computed[i].checked_ineq) << i;
    EXPECT_EQ(reloaded[i].missing_codes, computed[i].missing_codes) << i;
  }

  cache.SetPersistDir("");
  cache.Clear();
}

TEST(AnalysisCachePersistence, CorruptCacheFileFallsBackToRecomputation) {
  std::string dir = TempPath("epoch_acache_corrupt");
  std::filesystem::remove_all(dir);
  AnalysisCache& cache = AnalysisCache::Instance();
  cache.SetPersistDir(dir);
  cache.Clear();
  FaultProfile profile = LibraryProfiler().Profile(GenerateLibraryImage(LibcProfile()));
  const Image& binary = GitBinary().image();
  size_t count = cache.Reports(binary, profile).size();
  // Corrupt every cached file; the next "process" must recompute (a corrupt
  // entry is a miss, never an error) and rewrite the entry.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "<not-a-reports-file/>";
  }
  cache.Clear();
  EXPECT_EQ(cache.Reports(binary, profile).size(), count);
  AnalysisCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.report_disk_hits, 0u);
  EXPECT_EQ(stats.report_misses, 1u);
  EXPECT_EQ(stats.report_disk_writes, 1u);
  cache.SetPersistDir("");
  cache.Clear();
}

}  // namespace
}  // namespace lfi
