#include <gtest/gtest.h>

#include "util/string_util.h"
#include "xml/xml.h"

namespace lfi {
namespace {

TEST(XmlParse, SimpleElement) {
  auto doc = XmlParse("<root/>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->name(), "root");
  EXPECT_TRUE(doc->root()->children().empty());
}

TEST(XmlParse, Attributes) {
  auto doc = XmlParse(R"(<function name="read" argc="3" return="-1" errno="EINVAL"/>)");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->AttrOr("name", ""), "read");
  EXPECT_EQ(doc->root()->IntAttr("argc").value(), 3);
  EXPECT_EQ(doc->root()->AttrOr("return", ""), "-1");
  EXPECT_EQ(doc->root()->AttrOr("errno", ""), "EINVAL");
  EXPECT_FALSE(doc->root()->Attr("missing").has_value());
}

TEST(XmlParse, SingleQuotedAttributes) {
  auto doc = XmlParse("<a x='1' y='two'/>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->AttrOr("x", ""), "1");
  EXPECT_EQ(doc->root()->AttrOr("y", ""), "two");
}

TEST(XmlParse, NestedChildren) {
  auto doc = XmlParse(R"(
    <trigger id="readTrig2" class="ReadPipe">
      <args>
        <low>1024</low>
        <high>4096</high>
      </args>
    </trigger>)");
  ASSERT_NE(doc, nullptr);
  const XmlNode* args = doc->root()->Child("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->ChildText("low"), "1024");
  EXPECT_EQ(args->ChildText("high"), "4096");
  EXPECT_EQ(args->ChildText("absent", "def"), "def");
}

TEST(XmlParse, MultipleSameNameChildren) {
  auto doc = XmlParse("<f><reftrigger ref='a'/><reftrigger ref='b'/></f>");
  ASSERT_NE(doc, nullptr);
  auto refs = doc->root()->Children("reftrigger");
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0]->AttrOr("ref", ""), "a");
  EXPECT_EQ(refs[1]->AttrOr("ref", ""), "b");
}

TEST(XmlParse, PredefinedEntities) {
  auto doc = XmlParse("<a v=\"&lt;&gt;&amp;&quot;&apos;\">x &amp; y</a>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->AttrOr("v", ""), "<>&\"'");
  EXPECT_EQ(std::string(Trim(doc->root()->text())), "x & y");
}

TEST(XmlParse, CharacterReferences) {
  auto doc = XmlParse("<a>&#65;&#x42;</a>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(std::string(Trim(doc->root()->text())), "AB");
}

TEST(XmlParse, Comments) {
  auto doc = XmlParse("<!-- header --><a><!-- inside -->text</a><!-- trailer -->");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(std::string(Trim(doc->root()->text())), "text");
}

TEST(XmlParse, DeclarationAndDoctype) {
  auto doc = XmlParse("<?xml version=\"1.0\"?><!DOCTYPE scenario><scenario/>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->root()->name(), "scenario");
}

TEST(XmlParse, Cdata) {
  auto doc = XmlParse("<a><![CDATA[<raw> & stuff]]></a>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(std::string(Trim(doc->root()->text())), "<raw> & stuff");
}

TEST(XmlParse, ErrorMismatchedTags) {
  XmlError error;
  auto doc = XmlParse("<a><b></a></b>", &error);
  EXPECT_EQ(doc, nullptr);
  EXPECT_FALSE(error.message.empty());
}

TEST(XmlParse, ErrorUnterminated) {
  XmlError error;
  EXPECT_EQ(XmlParse("<a><b>", &error), nullptr);
  EXPECT_FALSE(error.message.empty());
}

TEST(XmlParse, ErrorUnknownEntity) {
  XmlError error;
  EXPECT_EQ(XmlParse("<a>&bogus;</a>", &error), nullptr);
}

TEST(XmlParse, ErrorTrailingContent) {
  XmlError error;
  EXPECT_EQ(XmlParse("<a/><b/>", &error), nullptr);
}

TEST(XmlParse, ErrorLineNumbers) {
  XmlError error;
  EXPECT_EQ(XmlParse("<a>\n\n<b></c>\n</a>", &error), nullptr);
  EXPECT_EQ(error.line, 3);
}

TEST(XmlSerialize, RoundTrip) {
  XmlDocument doc("scenario");
  XmlNode* trig = doc.root()->AddChild("trigger");
  trig->SetAttr("id", "t1");
  trig->SetAttr("class", "RandomTrigger");
  XmlNode* args = trig->AddChild("args");
  args->AddChild("probability")->set_text("0.25");
  XmlNode* fn = doc.root()->AddChild("function");
  fn->SetAttr("name", "read");
  fn->SetAttr("return", "-1");
  fn->AddChild("reftrigger")->SetAttr("ref", "t1");

  std::string xml = doc.ToString();
  auto parsed = XmlParse(xml);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->root()->Children("trigger").size(), 1u);
  EXPECT_EQ(parsed->root()->Child("trigger")->Child("args")->ChildText("probability"), "0.25");
  EXPECT_EQ(parsed->root()->Child("function")->AttrOr("name", ""), "read");
}

TEST(XmlSerialize, EscapesSpecialCharacters) {
  XmlDocument doc("a");
  doc.root()->SetAttr("v", "<&\">");
  doc.root()->set_text("x < y & z");
  std::string xml = doc.ToString();
  auto parsed = XmlParse(xml);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->root()->AttrOr("v", ""), "<&\">");
  EXPECT_EQ(std::string(Trim(parsed->root()->text())), "x < y & z");
}

TEST(XmlNode, SetAttrOverwrites) {
  XmlNode node("n");
  node.SetAttr("k", "1");
  node.SetAttr("k", "2");
  EXPECT_EQ(node.AttrOr("k", ""), "2");
  EXPECT_EQ(node.attrs().size(), 1u);
}

TEST(XmlParse, DeeplyNested) {
  std::string xml;
  const int kDepth = 50;
  for (int i = 0; i < kDepth; ++i) {
    xml += "<n>";
  }
  for (int i = 0; i < kDepth; ++i) {
    xml += "</n>";
  }
  auto doc = XmlParse(xml);
  ASSERT_NE(doc, nullptr);
  const XmlNode* cur = doc->root();
  int depth = 1;
  while (cur->Child("n") != nullptr) {
    cur = cur->Child("n");
    ++depth;
  }
  EXPECT_EQ(depth, kDepth);
}

}  // namespace
}  // namespace lfi
