#include <gtest/gtest.h>

#include <algorithm>

#include "image/assembler.h"
#include "profiler/fault_profile.h"
#include "profiler/profiler.h"
#include "profiler/stub_gen.h"
#include "util/errno_codes.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

// Compares two function profiles modulo ordering.
void ExpectSameProfile(const FunctionProfile& a, const FunctionProfile& b) {
  auto norm = [](FunctionProfile fn) {
    for (auto& e : fn.errors) {
      std::sort(e.errnos.begin(), e.errnos.end());
    }
    std::sort(fn.errors.begin(), fn.errors.end(),
              [](const ErrorSpec& x, const ErrorSpec& y) { return x.retval < y.retval; });
    std::sort(fn.success_constants.begin(), fn.success_constants.end());
    return fn;
  };
  FunctionProfile na = norm(a);
  FunctionProfile nb = norm(b);
  EXPECT_EQ(na.errors, nb.errors) << "function " << a.name;
  EXPECT_EQ(na.success_constants, nb.success_constants) << "function " << a.name;
  EXPECT_EQ(na.has_computed_success, nb.has_computed_success) << "function " << a.name;
}

TEST(Profiler, InfersReturnConstantAndErrno) {
  auto image = Assemble(R"(
module lib
func f
  cmpi r9, 0
  jne .ok
  movi r1, 4
  store [err+0], r1
  movi r0, -1
  ret
.ok:
  movi r0, 0
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  LibraryProfiler profiler;
  FunctionProfile fn = profiler.ProfileFunction(*image, "f");
  ASSERT_EQ(fn.errors.size(), 1u);
  EXPECT_EQ(fn.errors[0].retval, -1);
  ASSERT_EQ(fn.errors[0].errnos.size(), 1u);
  EXPECT_EQ(fn.errors[0].errnos[0], kEINTR);
  ASSERT_EQ(fn.success_constants.size(), 1u);
  EXPECT_EQ(fn.success_constants[0], 0);
  EXPECT_FALSE(fn.has_computed_success);
}

TEST(Profiler, ComputedReturnDetected) {
  auto image = Assemble(R"(
module lib
func f
  mov r0, r8
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  LibraryProfiler profiler;
  FunctionProfile fn = profiler.ProfileFunction(*image, "f");
  EXPECT_TRUE(fn.has_computed_success);
  EXPECT_TRUE(fn.errors.empty());
}

TEST(Profiler, NullWithErrnoIsError) {
  // Pointer convention: returning 0 with errno set is an error mode.
  auto image = Assemble(R"(
module lib
func mallocish
  cmpi r9, 0
  jne .ok
  movi r1, 12
  store [err+0], r1
  movi r0, 0
  ret
.ok:
  mov r0, r8
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  LibraryProfiler profiler;
  FunctionProfile fn = profiler.ProfileFunction(*image, "mallocish");
  ASSERT_EQ(fn.errors.size(), 1u);
  EXPECT_EQ(fn.errors[0].retval, 0);
  EXPECT_EQ(fn.errors[0].errnos, std::vector<int>{kENOMEM});
  EXPECT_TRUE(fn.has_computed_success);
}

TEST(Profiler, MultipleErrnosAggregatedPerRetval) {
  auto image = Assemble(R"(
module lib
func f
  cmpi r9, 0
  jne .c1
  movi r1, 4
  store [err+0], r1
  movi r0, -1
  ret
.c1:
  cmpi r9, 1
  jne .ok
  movi r1, 5
  store [err+0], r1
  movi r0, -1
  ret
.ok:
  mov r0, r8
  ret
end
)");
  ASSERT_TRUE(image.has_value());
  LibraryProfiler profiler;
  FunctionProfile fn = profiler.ProfileFunction(*image, "f");
  ASSERT_EQ(fn.errors.size(), 1u);
  EXPECT_EQ(fn.errors[0].errnos, (std::vector<int>{kEINTR, kEIO}));
}

TEST(Profiler, UnknownSymbolGivesEmptyProfile) {
  auto image = Assemble("module lib\nfunc f\n  ret\nend\n");
  ASSERT_TRUE(image.has_value());
  LibraryProfiler profiler;
  FunctionProfile fn = profiler.ProfileFunction(*image, "missing");
  EXPECT_TRUE(fn.errors.empty());
  EXPECT_FALSE(fn.has_computed_success);
}

// The headline property (§2): the profiler recovers the ground-truth profile
// of every function from the generated library binary alone.
class ProfileRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ProfileRoundTrip, StubGenThenProfileIsIdentity) {
  FaultProfile truth;
  switch (GetParam()) {
    case 0:
      truth = LibcProfile();
      break;
    case 1:
      truth = LibxmlProfile();
      break;
    default:
      truth = LibaprProfile();
      break;
  }
  Image binary = GenerateLibraryImage(truth);
  EXPECT_EQ(binary.module_name(), truth.library());

  LibraryProfiler profiler;
  FaultProfile recovered = profiler.Profile(binary);
  ASSERT_EQ(recovered.functions().size(), truth.functions().size());
  for (const auto& [name, fn] : truth.functions()) {
    const FunctionProfile* got = recovered.Find(name);
    ASSERT_NE(got, nullptr) << name;
    ExpectSameProfile(fn, *got);
  }
}

INSTANTIATE_TEST_SUITE_P(Libraries, ProfileRoundTrip, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return "libc";
                             case 1:
                               return "libxml";
                             default:
                               return "libapr";
                           }
                         });

TEST(FaultProfileXml, RoundTrip) {
  FaultProfile truth = LibcProfile();
  std::string xml = truth.ToXml();
  std::string error;
  auto parsed = FaultProfile::FromXml(xml, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->library(), "libc");
  ASSERT_EQ(parsed->functions().size(), truth.functions().size());
  for (const auto& [name, fn] : truth.functions()) {
    const FunctionProfile* got = parsed->Find(name);
    ASSERT_NE(got, nullptr) << name;
    ExpectSameProfile(fn, *got);
  }
}

TEST(FaultProfileXml, ErrorCodesSet) {
  FaultProfile profile = LibcProfile();
  const FunctionProfile* read = profile.Find("read");
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->ErrorCodes(), std::set<int64_t>{-1});
  const FunctionProfile* lock = profile.Find("pthread_mutex_lock");
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->ErrorCodes(), (std::set<int64_t>{kEDEADLK, kEINVAL}));
}

TEST(FaultProfileXml, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(FaultProfile::FromXml("<notprofile/>", &error).has_value());
  EXPECT_FALSE(
      FaultProfile::FromXml("<profile><function/></profile>", &error).has_value());
  EXPECT_FALSE(FaultProfile::FromXml(
                   "<profile><function name='f'><error retval='x'/></function></profile>",
                   &error)
                   .has_value());
}

TEST(FaultProfileXml, ReadExampleMatchesPaper) {
  // §2: "when returning -1, read() could also set the TLS variable errno to
  // EAGAIN, EBADF, EINTR, etc."
  FaultProfile profile = LibcProfile();
  const FunctionProfile* read = profile.Find("read");
  ASSERT_NE(read, nullptr);
  ASSERT_EQ(read->errors.size(), 1u);
  const auto& errnos = read->errors[0].errnos;
  EXPECT_NE(std::find(errnos.begin(), errnos.end(), kEAGAIN), errnos.end());
  EXPECT_NE(std::find(errnos.begin(), errnos.end(), kEBADF), errnos.end());
  EXPECT_NE(std::find(errnos.begin(), errnos.end(), kEINTR), errnos.end());
}

}  // namespace
}  // namespace lfi
